//! RISC-V RV32I (+M) frontend: decode, encode, disassembly, and a
//! two-pass assembler.
//!
//! Instructions are 4-byte little-endian words in the standard RISC-V
//! base encoding. Decoding maps each word onto the shared [`Instr`]
//! representation (LUI becomes `Li`, FENCE becomes `Nop`, ECALL/EBREAK
//! keep their own opcodes), so the timing simulators and detection
//! schemes run RV32I programs unchanged. Encoding is the exact inverse
//! for every instruction the base ISA can represent;
//! `decode_word(encode_word(i)) == i.canonical()` holds for all of them.
//!
//! Values are stored sign-extended to 64 bits in the unified register
//! file. Sign extension is strictly monotone from `u32` to `u64` order,
//! so the shared compare/branch logic works for both signed and
//! unsigned 32-bit comparisons.

use crate::asm::{col_in, is_ident, parse_int, parse_mem_operand, strip_comment, unescape};
use crate::{
    AsmError, DecodeError, EncodeError, Instr, IsaId, Opcode, Program, Reg, DATA_BASE, TEXT_BASE,
};
use std::collections::BTreeMap;

/// Size of one encoded RV32I instruction in bytes.
pub const INST_SIZE: u64 = 4;

// -- immediate extraction -----------------------------------------------

fn imm_u(w: u32) -> i64 {
    i64::from((w & 0xFFFF_F000) as i32)
}

fn imm_i(w: u32) -> i64 {
    i64::from((w as i32) >> 20)
}

fn imm_s(w: u32) -> i64 {
    i64::from(((w as i32) >> 25 << 5) | ((w >> 7) & 31) as i32)
}

fn imm_b(w: u32) -> i64 {
    let imm = ((w >> 31) << 12)
        | (((w >> 7) & 1) << 11)
        | (((w >> 25) & 0x3F) << 5)
        | (((w >> 8) & 0xF) << 1);
    i64::from((imm as i32) << 19 >> 19)
}

fn imm_j(w: u32) -> i64 {
    let imm = ((w >> 31) << 20)
        | (((w >> 12) & 0xFF) << 12)
        | (((w >> 20) & 1) << 11)
        | (((w >> 21) & 0x3FF) << 1);
    i64::from((imm as i32) << 11 >> 11)
}

// -- decode -------------------------------------------------------------

/// Decodes one 32-bit RV32I instruction word.
///
/// # Errors
///
/// Returns [`DecodeError::BadOpcode`] (carrying the low opcode byte) for
/// encodings outside the RV32I base plus the M integer group.
pub fn decode_word(w: u32) -> Result<Instr, DecodeError> {
    use Opcode::*;
    let opc = w & 0x7F;
    let bad = || DecodeError::BadOpcode(opc as u8);
    let rd = Reg::x(((w >> 7) & 31) as u8);
    let rs1 = Reg::x(((w >> 15) & 31) as u8);
    let rs2 = Reg::x(((w >> 20) & 31) as u8);
    let f3 = (w >> 12) & 7;
    let f7 = w >> 25;
    let i = match opc {
        0x37 => Instr::rri(Li, rd, Reg::ZERO, imm_u(w)),
        0x17 => Instr::rri(Auipc, rd, Reg::ZERO, imm_u(w)),
        0x6F => Instr::rri(Jal, rd, Reg::ZERO, imm_j(w)),
        0x67 if f3 == 0 => Instr::rri(Jalr, rd, rs1, imm_i(w)),
        0x63 => {
            let op = match f3 {
                0 => Beq,
                1 => Bne,
                4 => Blt,
                5 => Bge,
                6 => Bltu,
                7 => Bgeu,
                _ => return Err(bad()),
            };
            Instr::branch(op, rs1, rs2, imm_b(w))
        }
        0x03 => {
            let op = match f3 {
                0 => Lb,
                1 => Lh,
                2 => Lw,
                4 => Lbu,
                5 => Lhu,
                _ => return Err(bad()),
            };
            Instr::load(op, rd, rs1, imm_i(w))
        }
        0x23 => {
            let op = match f3 {
                0 => Sb,
                1 => Sh,
                2 => Sw,
                _ => return Err(bad()),
            };
            Instr::store(op, rs2, rs1, imm_s(w))
        }
        0x13 => {
            let shamt = i64::from((w >> 20) & 31);
            match f3 {
                1 if f7 == 0 => Instr::rri(Slli, rd, rs1, shamt),
                5 if f7 == 0 => Instr::rri(Srli, rd, rs1, shamt),
                5 if f7 == 0x20 => Instr::rri(Srai, rd, rs1, shamt),
                1 | 5 => return Err(bad()),
                _ => {
                    let op = match f3 {
                        0 => Addi,
                        2 => Slti,
                        3 => Sltiu,
                        4 => Xori,
                        6 => Ori,
                        _ => Andi,
                    };
                    Instr::rri(op, rd, rs1, imm_i(w))
                }
            }
        }
        0x33 => {
            let op = match (f7, f3) {
                (0, 0) => Add,
                (0x20, 0) => Sub,
                (0, 1) => Sll,
                (0, 2) => Slt,
                (0, 3) => Sltu,
                (0, 4) => Xor,
                (0, 5) => Srl,
                (0x20, 5) => Sra,
                (0, 6) => Or,
                (0, 7) => And,
                (1, 0) => Mul,
                (1, 4) => Div,
                (1, 5) => Divu,
                (1, 6) => Rem,
                (1, 7) => Remu,
                _ => return Err(bad()),
            };
            Instr::rrr(op, rd, rs1, rs2)
        }
        0x0F => Instr::nop(),
        0x73 if w == 0x0000_0073 => Instr {
            op: Ecall,
            ..Instr::nop()
        },
        0x73 if w == 0x0010_0073 => Instr {
            op: Ebreak,
            ..Instr::nop()
        },
        _ => return Err(bad()),
    };
    Ok(i.canonical())
}

// -- encode -------------------------------------------------------------

fn r_word(f7: u32, rs2: u32, rs1: u32, f3: u32, rd: u32, opc: u32) -> u32 {
    (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opc
}

fn i_word(imm: i64, rs1: u32, f3: u32, rd: u32, opc: u32) -> Option<u32> {
    if !(-2048..=2047).contains(&imm) {
        return None;
    }
    Some((((imm as u32) & 0xFFF) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opc)
}

fn s_word(imm: i64, rs2: u32, rs1: u32, f3: u32) -> Option<u32> {
    if !(-2048..=2047).contains(&imm) {
        return None;
    }
    let imm = imm as u32;
    Some(
        (((imm >> 5) & 0x7F) << 25)
            | (rs2 << 20)
            | (rs1 << 15)
            | (f3 << 12)
            | ((imm & 31) << 7)
            | 0x23,
    )
}

fn b_word(imm: i64, rs2: u32, rs1: u32, f3: u32) -> Option<u32> {
    if !(-4096..=4094).contains(&imm) || imm % 2 != 0 {
        return None;
    }
    let imm = imm as u32;
    Some(
        (((imm >> 12) & 1) << 31)
            | (((imm >> 5) & 0x3F) << 25)
            | (rs2 << 20)
            | (rs1 << 15)
            | (f3 << 12)
            | (((imm >> 1) & 0xF) << 8)
            | (((imm >> 11) & 1) << 7)
            | 0x63,
    )
}

fn j_word(imm: i64, rd: u32) -> Option<u32> {
    if !(-(1 << 20)..=(1 << 20) - 2).contains(&imm) || imm % 2 != 0 {
        return None;
    }
    let imm = imm as u32;
    Some(
        (((imm >> 20) & 1) << 31)
            | (((imm >> 1) & 0x3FF) << 21)
            | (((imm >> 11) & 1) << 20)
            | (((imm >> 12) & 0xFF) << 12)
            | (rd << 7)
            | 0x6F,
    )
}

fn u_word(imm: i64, rd: u32, opc: u32) -> Option<u32> {
    if imm != i64::from(imm as i32) || imm & 0xFFF != 0 {
        return None;
    }
    Some(((imm as u32) & 0xFFFF_F000) | (rd << 7) | opc)
}

fn shamt_word(f7: u32, imm: i64, rs1: u32, f3: u32, rd: u32) -> Option<u32> {
    if !(0..=31).contains(&imm) {
        return None;
    }
    Some(r_word(f7, imm as u32, rs1, f3, rd, 0x13))
}

/// Encodes one instruction into its 32-bit RV32I word.
///
/// # Errors
///
/// Returns [`EncodeError`] if the opcode has no RV32I encoding (64-bit
/// loads/stores, FP, `halt`, `print`, `lih`), an immediate is out of its
/// field range, or a register operand is not an integer register.
pub fn encode_word(instr: &Instr) -> Result<u32, EncodeError> {
    use Opcode::*;
    let i = instr.canonical();
    let e = EncodeError { imm: i.imm };
    let xr = |r: Reg| {
        if r.is_int() {
            Ok(u32::from(r.raw()))
        } else {
            Err(e)
        }
    };
    let (rd, rs1, rs2) = (xr(i.rd)?, xr(i.rs1)?, xr(i.rs2)?);
    let w = match i.op {
        Li => u_word(i.imm, rd, 0x37),
        Auipc => u_word(i.imm, rd, 0x17),
        Jal => j_word(i.imm, rd),
        Jalr => i_word(i.imm, rs1, 0, rd, 0x67),
        Beq => b_word(i.imm, rs2, rs1, 0),
        Bne => b_word(i.imm, rs2, rs1, 1),
        Blt => b_word(i.imm, rs2, rs1, 4),
        Bge => b_word(i.imm, rs2, rs1, 5),
        Bltu => b_word(i.imm, rs2, rs1, 6),
        Bgeu => b_word(i.imm, rs2, rs1, 7),
        Lb => i_word(i.imm, rs1, 0, rd, 0x03),
        Lh => i_word(i.imm, rs1, 1, rd, 0x03),
        Lw => i_word(i.imm, rs1, 2, rd, 0x03),
        Lbu => i_word(i.imm, rs1, 4, rd, 0x03),
        Lhu => i_word(i.imm, rs1, 5, rd, 0x03),
        Sb => s_word(i.imm, rs2, rs1, 0),
        Sh => s_word(i.imm, rs2, rs1, 1),
        Sw => s_word(i.imm, rs2, rs1, 2),
        Addi => i_word(i.imm, rs1, 0, rd, 0x13),
        Slti => i_word(i.imm, rs1, 2, rd, 0x13),
        Sltiu => i_word(i.imm, rs1, 3, rd, 0x13),
        Xori => i_word(i.imm, rs1, 4, rd, 0x13),
        Ori => i_word(i.imm, rs1, 6, rd, 0x13),
        Andi => i_word(i.imm, rs1, 7, rd, 0x13),
        Slli => shamt_word(0, i.imm, rs1, 1, rd),
        Srli => shamt_word(0, i.imm, rs1, 5, rd),
        Srai => shamt_word(0x20, i.imm, rs1, 5, rd),
        Add => Some(r_word(0, rs2, rs1, 0, rd, 0x33)),
        Sub => Some(r_word(0x20, rs2, rs1, 0, rd, 0x33)),
        Sll => Some(r_word(0, rs2, rs1, 1, rd, 0x33)),
        Slt => Some(r_word(0, rs2, rs1, 2, rd, 0x33)),
        Sltu => Some(r_word(0, rs2, rs1, 3, rd, 0x33)),
        Xor => Some(r_word(0, rs2, rs1, 4, rd, 0x33)),
        Srl => Some(r_word(0, rs2, rs1, 5, rd, 0x33)),
        Sra => Some(r_word(0x20, rs2, rs1, 5, rd, 0x33)),
        Or => Some(r_word(0, rs2, rs1, 6, rd, 0x33)),
        And => Some(r_word(0, rs2, rs1, 7, rd, 0x33)),
        Mul => Some(r_word(1, rs2, rs1, 0, rd, 0x33)),
        Div => Some(r_word(1, rs2, rs1, 4, rd, 0x33)),
        Divu => Some(r_word(1, rs2, rs1, 5, rd, 0x33)),
        Rem => Some(r_word(1, rs2, rs1, 6, rd, 0x33)),
        Remu => Some(r_word(1, rs2, rs1, 7, rd, 0x33)),
        Nop => Some(0x0000_000F),
        Ecall => Some(0x0000_0073),
        Ebreak => Some(0x0010_0073),
        // No RV32I encoding: 64-bit memory ops, FP, and the native
        // system/constant forms.
        Lwu | Ld | Sd | Fld | Fsd | Lih | Halt | Print | Fadd | Fsub | Fmul | Fdiv | Fsqrt
        | Fmin | Fmax | Feq | Flt | Fle | Fcvtif | Fcvtfi | Fmvif | Fmvfi => None,
    };
    w.ok_or(e)
}

/// Decodes a flat little-endian RV32I text image.
///
/// # Errors
///
/// Returns the word index of the first malformed instruction. Trailing
/// bytes that do not fill a word are an error at index `len / 4`.
pub fn decode_text(bytes: &[u8]) -> Result<Vec<Instr>, (usize, DecodeError)> {
    if !bytes.len().is_multiple_of(INST_SIZE as usize) {
        return Err((bytes.len() / INST_SIZE as usize, DecodeError::BadOpcode(0)));
    }
    bytes
        .chunks_exact(INST_SIZE as usize)
        .enumerate()
        .map(|(idx, chunk)| {
            let w = u32::from_le_bytes(chunk.try_into().expect("chunks_exact"));
            decode_word(w).map_err(|e| (idx, e))
        })
        .collect()
}

/// Encodes a text segment into RV32I bytes (little-endian words).
///
/// # Errors
///
/// Returns the index of the first instruction with no RV32I encoding.
pub fn encode_text(text: &[Instr]) -> Result<Vec<u8>, (usize, EncodeError)> {
    let mut out = Vec::with_capacity(text.len() * INST_SIZE as usize);
    for (idx, i) in text.iter().enumerate() {
        let w = encode_word(i).map_err(|e| (idx, e))?;
        out.extend_from_slice(&w.to_le_bytes());
    }
    Ok(out)
}

/// Disassembles an RV32I text segment with 4-byte addresses.
pub fn disassemble_text(text: &[Instr], base: u64) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (idx, i) in text.iter().enumerate() {
        let addr = base + idx as u64 * INST_SIZE;
        let _ = writeln!(out, "{addr:#010x}: {i}");
    }
    out
}

// -- assembler ----------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Text,
    Data,
}

#[derive(Debug, Clone, Copy)]
enum Pos {
    /// Instruction-word index in the text segment.
    Text(usize),
    /// Byte offset in the data segment.
    Data(usize),
}

fn pos_addr(p: Pos) -> u64 {
    match p {
        Pos::Text(i) => TEXT_BASE + i as u64 * INST_SIZE,
        Pos::Data(off) => DATA_BASE + off as u64,
    }
}

struct Stmt<'a> {
    raw: &'a str,
    code: &'a str,
    line: usize,
    /// Word index of this statement's first instruction.
    index: usize,
}

#[derive(Default)]
struct AsmState<'a> {
    labels: BTreeMap<&'a str, Pos>,
    data: Vec<u8>,
    /// (byte offset, label, width, line, col) — `.word`/`.dword` slots
    /// holding a label's address, patched after all labels are bound.
    data_fixups: Vec<(usize, &'a str, usize, usize, usize)>,
    stmts: Vec<Stmt<'a>>,
    entry: Option<(&'a str, usize, usize)>,
    words: usize,
}

fn split_mnemonic(code: &str) -> (&str, &str) {
    match code.find(char::is_whitespace) {
        Some(pos) => (&code[..pos], code[pos..].trim()),
        None => (code, ""),
    }
}

fn split_ops(rest: &str) -> Vec<&str> {
    if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    }
}

/// Sign-corrected low 12 bits: `lui(v - lo) + addi(lo)` reconstructs
/// `v` under 32-bit wrap-around.
fn lo12(v: i64) -> i64 {
    ((v & 0xFFF) ^ 0x800) - 0x800
}

/// Number of instruction words a `li` expands to.
fn li_words(v: i64) -> usize {
    if (-2048..=2047).contains(&v) || lo12(v) == 0 {
        1
    } else {
        2
    }
}

/// Number of instruction words one text statement occupies. Must agree
/// with what `emit_stmt` produces, since pass 1 uses it to lay out
/// label addresses.
fn stmt_words(code: &str) -> usize {
    let (mnemonic, rest) = split_mnemonic(code);
    match mnemonic {
        // `la` is always lui+addi so label layout never depends on the
        // (not-yet-resolved) address value.
        "la" => 2,
        "li" => match split_ops(rest).get(1).and_then(|s| parse_int(s)) {
            Some(v) => li_words(v),
            // Unparsable immediate: the error surfaces in pass 2.
            None => 1,
        },
        _ => 1,
    }
}

fn li_expand(rd: Reg, v: i64) -> Result<Vec<Instr>, String> {
    if v != i64::from(v as i32) {
        return Err(format!("immediate {v} does not fit in 32 bits"));
    }
    if (-2048..=2047).contains(&v) {
        return Ok(vec![Instr::rri(Opcode::Addi, rd, Reg::ZERO, v)]);
    }
    let lo = lo12(v);
    let hi = i64::from((v as i32).wrapping_sub(lo as i32));
    let lui = Instr::rri(Opcode::Li, rd, Reg::ZERO, hi);
    if lo == 0 {
        Ok(vec![lui])
    } else {
        Ok(vec![lui, Instr::rri(Opcode::Addi, rd, rd, lo)])
    }
}

/// Assembles RV32I source text into a [`Program`] stamped
/// [`IsaId::Rv32i`].
///
/// Supports the real base mnemonics (`lui auipc jal jalr` branches,
/// loads/stores, ALU ops, `mul div divu rem remu`, `fence ecall
/// ebreak`) plus the usual pseudos (`nop li la mv not neg seqz snez
/// beqz bnez bltz bgez bgtz blez ble bgt j jr call ret`), and the same
/// directive set as the native assembler. There are no `halt`/`print`
/// instructions: programs exit and print through `ecall` (a7 = 93
/// exits with a0; a7 = 1 prints a0).
///
/// Emitted words are decoded back through [`decode_word`], so the
/// assembler and decoder agree by construction.
///
/// # Errors
///
/// Returns an [`AsmError`] with the offending line and column.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut a = AsmState::default();
    let mut segment = Segment::Text;

    // Pass 1: bind labels, collect data, count instruction words.
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut code = strip_comment(raw).trim();
        while let Some(colon) = code.find(':') {
            let (name, rest) = code.split_at(colon);
            let name = name.trim();
            if name.is_empty() || !is_ident(name) {
                return Err(AsmError::at(
                    line,
                    col_in(raw, name),
                    format!("bad label `{name}`"),
                ));
            }
            if a.labels.contains_key(name) {
                return Err(AsmError::at(
                    line,
                    col_in(raw, name),
                    format!("label `{name}` defined twice"),
                ));
            }
            let pos = match segment {
                Segment::Text => Pos::Text(a.words),
                Segment::Data => Pos::Data(a.data.len()),
            };
            a.labels.insert(name, pos);
            code = rest[1..].trim();
        }
        if code.is_empty() {
            continue;
        }
        if let Some(directive) = code.strip_prefix('.') {
            parse_directive(&mut a, &mut segment, directive, raw, line)?;
            continue;
        }
        if segment == Segment::Data {
            return Err(AsmError::at(
                line,
                col_in(raw, code),
                "instructions are not allowed in .data".to_string(),
            ));
        }
        let index = a.words;
        a.words += stmt_words(code);
        a.stmts.push(Stmt {
            raw,
            code,
            line,
            index,
        });
    }

    // Pass 2: emit instruction words with all labels resolved.
    let mut words: Vec<u32> = Vec::with_capacity(a.words);
    for s in &a.stmts {
        debug_assert_eq!(words.len(), s.index);
        emit_stmt(&mut words, &a.labels, s)?;
    }

    let fixups = std::mem::take(&mut a.data_fixups);
    for (offset, name, width, line, col) in fixups {
        let addr = match a.labels.get(name) {
            Some(&p) => pos_addr(p),
            None => {
                return Err(AsmError::at(
                    line,
                    col,
                    format!("label `{name}` was never bound"),
                ))
            }
        };
        a.data[offset..offset + width].copy_from_slice(&addr.to_le_bytes()[..width]);
    }

    let entry = match a.entry {
        Some((name, line, col)) => match a.labels.get(name) {
            Some(&Pos::Text(i)) => TEXT_BASE + i as u64 * INST_SIZE,
            Some(&Pos::Data(_)) => {
                return Err(AsmError::at(
                    line,
                    col,
                    format!("entry label `{name}` is in .data"),
                ))
            }
            None => {
                return Err(AsmError::at(
                    line,
                    col,
                    format!("label `{name}` was never bound"),
                ))
            }
        },
        None => TEXT_BASE,
    };

    let text = words
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            decode_word(w).map_err(|e| {
                AsmError::new(
                    0,
                    format!("internal: emitted word {i} does not decode: {e}"),
                )
            })
        })
        .collect::<Result<Vec<Instr>, AsmError>>()?;
    let symbols = a
        .labels
        .iter()
        .map(|(name, &p)| (name.to_string(), pos_addr(p)))
        .collect();
    Ok(Program::new(text, TEXT_BASE, a.data, DATA_BASE, entry, symbols).with_isa(IsaId::Rv32i))
}

fn parse_directive<'a>(
    a: &mut AsmState<'a>,
    segment: &mut Segment,
    directive: &'a str,
    raw: &'a str,
    line: usize,
) -> Result<(), AsmError> {
    let err = |tok: &str, message: String| AsmError::at(line, col_in(raw, tok), message);
    let (name, args) = split_mnemonic(directive);
    let ints = |args: &str| -> Result<Vec<i64>, AsmError> {
        args.split(',')
            .map(|t| {
                parse_int(t).ok_or_else(|| err(t.trim(), format!("bad integer `{}`", t.trim())))
            })
            .collect()
    };
    match name {
        "text" => *segment = Segment::Text,
        "data" => *segment = Segment::Data,
        "globl" | "global" => {}
        "entry" => {
            if !is_ident(args) {
                return Err(err(args, format!("bad entry label `{args}`")));
            }
            a.entry = Some((args, line, col_in(raw, args)));
        }
        "byte" => {
            for v in ints(args)? {
                a.data.push(v as u8);
            }
        }
        "half" => {
            for v in ints(args)? {
                a.data.extend_from_slice(&(v as u16).to_le_bytes());
            }
        }
        "word" | "dword" => {
            let width = if name == "word" { 4 } else { 8 };
            for t in args.split(',') {
                let t = t.trim();
                if let Some(v) = parse_int(t) {
                    a.data.extend_from_slice(&(v as u64).to_le_bytes()[..width]);
                } else if is_ident(t) {
                    a.data_fixups
                        .push((a.data.len(), t, width, line, col_in(raw, t)));
                    a.data.extend_from_slice(&[0; 8][..width]);
                } else {
                    return Err(err(t, format!("bad integer or label `{t}`")));
                }
            }
        }
        "space" => {
            let n = parse_int(args).ok_or_else(|| err(args, format!("bad size `{args}`")))?;
            if n < 0 {
                return Err(err(args, "negative .space".to_string()));
            }
            a.data.resize(a.data.len() + n as usize, 0);
        }
        "align" => {
            let n = parse_int(args).ok_or_else(|| err(args, format!("bad alignment `{args}`")))?;
            if n <= 0 || !(n as u64).is_power_of_two() {
                return Err(err(
                    args,
                    format!("alignment must be a positive power of two, got {n}"),
                ));
            }
            while !a.data.len().is_multiple_of(n as usize) {
                a.data.push(0);
            }
        }
        "asciz" | "string" => {
            let s = args
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| err(args, "expected a quoted string".to_string()))?;
            a.data.extend_from_slice(unescape(s).as_bytes());
            a.data.push(0);
        }
        other => return Err(err(name, format!("unknown directive `.{other}`"))),
    }
    Ok(())
}

fn emit_stmt(
    words: &mut Vec<u32>,
    labels: &BTreeMap<&str, Pos>,
    s: &Stmt<'_>,
) -> Result<(), AsmError> {
    use Opcode::*;
    let (line, raw) = (s.line, s.raw);
    let err = |tok: &str, message: String| AsmError::at(line, col_in(raw, tok), message);
    let (mnemonic, rest) = split_mnemonic(s.code);
    let ops = split_ops(rest);

    let reg = |t: &str| -> Result<Reg, AsmError> {
        match Reg::parse(t) {
            Some(r) if r.is_int() => Ok(r),
            Some(_) => Err(err(t, format!("`{t}`: rv32i has no fp registers"))),
            None => Err(err(t, format!("bad register `{t}`"))),
        }
    };
    let imm = |t: &str| parse_int(t).ok_or_else(|| err(t, format!("bad immediate `{t}`")));
    let nops = |want: usize| -> Result<(), AsmError> {
        if ops.len() == want {
            Ok(())
        } else {
            Err(err(
                mnemonic,
                format!("`{mnemonic}` expects {want} operands, got {}", ops.len()),
            ))
        }
    };
    let mem = |t: &str| -> Result<(i64, Reg), AsmError> {
        let (off, base) =
            parse_mem_operand(t).ok_or_else(|| err(t, format!("bad memory operand `{t}`")))?;
        if !base.is_int() {
            return Err(err(t, format!("`{t}`: rv32i has no fp registers")));
        }
        Ok((off, base))
    };
    let pc = TEXT_BASE + s.index as u64 * INST_SIZE;
    // A control-flow target: a numeric offset, or a label resolved
    // pc-relative to this statement.
    let target = |t: &str| -> Result<i64, AsmError> {
        if let Some(v) = parse_int(t) {
            return Ok(v);
        }
        if !is_ident(t) {
            return Err(err(t, format!("bad label `{t}`")));
        }
        match labels.get(t) {
            Some(&p) => Ok(pos_addr(p) as i64 - pc as i64),
            None => Err(err(t, format!("label `{t}` was never bound"))),
        }
    };

    let instrs: Vec<Instr> = match mnemonic {
        "nop" => {
            nops(0)?;
            vec![Instr::rri(Addi, Reg::ZERO, Reg::ZERO, 0)]
        }
        "fence" => {
            nops(0)?;
            vec![Instr::nop()]
        }
        "ecall" | "ebreak" => {
            nops(0)?;
            let op = if mnemonic == "ecall" { Ecall } else { Ebreak };
            vec![Instr { op, ..Instr::nop() }.canonical()]
        }
        "lui" | "auipc" => {
            nops(2)?;
            let rd = reg(ops[0])?;
            let v = imm(ops[1])?;
            if !(-0x8_0000..=0xF_FFFF).contains(&v) {
                return Err(err(
                    ops[1],
                    format!("upper immediate {v} out of 20-bit range"),
                ));
            }
            let op = if mnemonic == "lui" { Li } else { Auipc };
            vec![Instr::rri(
                op,
                rd,
                Reg::ZERO,
                i64::from(((v as u32) << 12) as i32),
            )]
        }
        "li" => {
            nops(2)?;
            let rd = reg(ops[0])?;
            let v = imm(ops[1])?;
            li_expand(rd, v).map_err(|m| err(ops[1], m))?
        }
        "la" => {
            nops(2)?;
            let rd = reg(ops[0])?;
            if !is_ident(ops[1]) {
                return Err(err(ops[1], format!("bad label `{}`", ops[1])));
            }
            let addr = match labels.get(ops[1]) {
                Some(&p) => pos_addr(p) as i64,
                None => return Err(err(ops[1], format!("label `{}` was never bound", ops[1]))),
            };
            let lo = lo12(addr);
            let hi = i64::from((addr as i32).wrapping_sub(lo as i32));
            // Always two words so pass-1 layout holds even when lo == 0.
            vec![
                Instr::rri(Li, rd, Reg::ZERO, hi),
                Instr::rri(Addi, rd, rd, lo),
            ]
        }
        "mv" => {
            nops(2)?;
            vec![Instr::rri(Addi, reg(ops[0])?, reg(ops[1])?, 0)]
        }
        "not" => {
            nops(2)?;
            vec![Instr::rri(Xori, reg(ops[0])?, reg(ops[1])?, -1)]
        }
        "neg" => {
            nops(2)?;
            vec![Instr::rrr(Sub, reg(ops[0])?, Reg::ZERO, reg(ops[1])?)]
        }
        "seqz" => {
            nops(2)?;
            vec![Instr::rri(Sltiu, reg(ops[0])?, reg(ops[1])?, 1)]
        }
        "snez" => {
            nops(2)?;
            vec![Instr::rrr(Sltu, reg(ops[0])?, Reg::ZERO, reg(ops[1])?)]
        }
        "j" => {
            nops(1)?;
            vec![Instr::rri(Jal, Reg::ZERO, Reg::ZERO, target(ops[0])?)]
        }
        "call" => {
            nops(1)?;
            vec![Instr::rri(Jal, Reg::RA, Reg::ZERO, target(ops[0])?)]
        }
        "jr" => {
            nops(1)?;
            vec![Instr::rri(Jalr, Reg::ZERO, reg(ops[0])?, 0)]
        }
        "ret" => {
            nops(0)?;
            vec![Instr::rri(Jalr, Reg::ZERO, Reg::RA, 0)]
        }
        "jal" => match ops.len() {
            1 => vec![Instr::rri(Jal, Reg::RA, Reg::ZERO, target(ops[0])?)],
            2 => vec![Instr::rri(Jal, reg(ops[0])?, Reg::ZERO, target(ops[1])?)],
            n => {
                return Err(err(
                    mnemonic,
                    format!("`jal` expects 1 or 2 operands, got {n}"),
                ))
            }
        },
        "jalr" => match ops.len() {
            1 => vec![Instr::rri(Jalr, Reg::RA, reg(ops[0])?, 0)],
            2 => {
                let rd = reg(ops[0])?;
                let (off, base) = mem(ops[1])?;
                vec![Instr::rri(Jalr, rd, base, off)]
            }
            n => {
                return Err(err(
                    mnemonic,
                    format!("`jalr` expects 1 or 2 operands, got {n}"),
                ))
            }
        },
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            nops(3)?;
            let op = match mnemonic {
                "beq" => Beq,
                "bne" => Bne,
                "blt" => Blt,
                "bge" => Bge,
                "bltu" => Bltu,
                _ => Bgeu,
            };
            vec![Instr::branch(
                op,
                reg(ops[0])?,
                reg(ops[1])?,
                target(ops[2])?,
            )]
        }
        "beqz" | "bnez" | "bltz" | "bgez" | "bgtz" | "blez" => {
            nops(2)?;
            let rs = reg(ops[0])?;
            let off = target(ops[1])?;
            let i = match mnemonic {
                "beqz" => Instr::branch(Beq, rs, Reg::ZERO, off),
                "bnez" => Instr::branch(Bne, rs, Reg::ZERO, off),
                "bltz" => Instr::branch(Blt, rs, Reg::ZERO, off),
                "bgez" => Instr::branch(Bge, rs, Reg::ZERO, off),
                "bgtz" => Instr::branch(Blt, Reg::ZERO, rs, off),
                _ => Instr::branch(Bge, Reg::ZERO, rs, off),
            };
            vec![i]
        }
        "ble" | "bgt" => {
            nops(3)?;
            let (r1, r2) = (reg(ops[0])?, reg(ops[1])?);
            let off = target(ops[2])?;
            let i = if mnemonic == "ble" {
                Instr::branch(Bge, r2, r1, off)
            } else {
                Instr::branch(Blt, r2, r1, off)
            };
            vec![i]
        }
        "lb" | "lh" | "lw" | "lbu" | "lhu" => {
            nops(2)?;
            let op = match mnemonic {
                "lb" => Lb,
                "lh" => Lh,
                "lw" => Lw,
                "lbu" => Lbu,
                _ => Lhu,
            };
            let rd = reg(ops[0])?;
            let (off, base) = mem(ops[1])?;
            vec![Instr::load(op, rd, base, off)]
        }
        "sb" | "sh" | "sw" => {
            nops(2)?;
            let op = match mnemonic {
                "sb" => Sb,
                "sh" => Sh,
                _ => Sw,
            };
            let src = reg(ops[0])?;
            let (off, base) = mem(ops[1])?;
            vec![Instr::store(op, src, base, off)]
        }
        "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" | "slli" | "srli" | "srai" => {
            nops(3)?;
            let op = match mnemonic {
                "addi" => Addi,
                "slti" => Slti,
                "sltiu" => Sltiu,
                "xori" => Xori,
                "ori" => Ori,
                "andi" => Andi,
                "slli" => Slli,
                "srli" => Srli,
                _ => Srai,
            };
            vec![Instr::rri(op, reg(ops[0])?, reg(ops[1])?, imm(ops[2])?)]
        }
        "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and" | "mul"
        | "div" | "divu" | "rem" | "remu" => {
            nops(3)?;
            let op = match mnemonic {
                "add" => Add,
                "sub" => Sub,
                "sll" => Sll,
                "slt" => Slt,
                "sltu" => Sltu,
                "xor" => Xor,
                "srl" => Srl,
                "sra" => Sra,
                "or" => Or,
                "and" => And,
                "mul" => Mul,
                "div" => Div,
                "divu" => Divu,
                "rem" => Rem,
                _ => Remu,
            };
            vec![Instr::rrr(op, reg(ops[0])?, reg(ops[1])?, reg(ops[2])?)]
        }
        _ => return Err(err(mnemonic, format!("unknown mnemonic `{mnemonic}`"))),
    };

    debug_assert_eq!(
        instrs.len(),
        stmt_words(s.code),
        "pass-1/pass-2 layout skew"
    );
    for ins in instrs {
        let w = encode_word(&ins).map_err(|e| err(mnemonic, format!("`{mnemonic}`: {e}")))?;
        words.push(w);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::*;

    #[test]
    fn classic_addi_vector() {
        // The canonical RISC-V hello-word: addi a0, x0, 10.
        let i = decode_word(0x00A0_0513).unwrap();
        assert_eq!(i, Instr::rri(Opcode::Addi, A0, Reg::ZERO, 10).canonical());
        assert_eq!(encode_word(&i).unwrap(), 0x00A0_0513);
    }

    #[test]
    fn system_words() {
        let ecall = decode_word(0x0000_0073).unwrap();
        assert_eq!(ecall.op, Opcode::Ecall);
        assert_eq!(ecall.rs1, A7);
        assert_eq!(ecall.rs2, A0);
        assert_eq!(encode_word(&ecall).unwrap(), 0x0000_0073);
        let ebreak = decode_word(0x0010_0073).unwrap();
        assert_eq!(ebreak.op, Opcode::Ebreak);
        assert_eq!(encode_word(&ebreak).unwrap(), 0x0010_0073);
        // FENCE decodes to nop and nop encodes to the canonical fence.
        assert_eq!(decode_word(0x0000_000F).unwrap(), Instr::nop());
        assert_eq!(encode_word(&Instr::nop()).unwrap(), 0x0000_000F);
    }

    #[test]
    fn every_encodable_opcode_round_trips() {
        use Opcode::*;
        let samples = vec![
            Instr::rri(Li, T0, Reg::ZERO, -0x7FFF_F000),
            Instr::rri(Auipc, T0, Reg::ZERO, 0x7FFF_F000),
            Instr::rri(Jal, RA, Reg::ZERO, -(1 << 20)),
            Instr::rri(Jalr, RA, T1, 2047),
            Instr::branch(Beq, T0, T1, -4096),
            Instr::branch(Bne, T0, T1, 4094),
            Instr::branch(Blt, T0, T1, -2),
            Instr::branch(Bge, T0, T1, 8),
            Instr::branch(Bltu, T0, T1, 16),
            Instr::branch(Bgeu, T0, T1, -16),
            Instr::load(Lb, T0, SP, -2048),
            Instr::load(Lh, T0, SP, 2047),
            Instr::load(Lw, T0, SP, 0),
            Instr::load(Lbu, T0, SP, 1),
            Instr::load(Lhu, T0, SP, 2),
            Instr::store(Sb, T0, SP, -1),
            Instr::store(Sh, T0, SP, -2048),
            Instr::store(Sw, T0, SP, 2047),
            Instr::rri(Addi, T0, T1, -2048),
            Instr::rri(Slti, T0, T1, 2047),
            Instr::rri(Sltiu, T0, T1, 1),
            Instr::rri(Xori, T0, T1, -1),
            Instr::rri(Ori, T0, T1, 0x55),
            Instr::rri(Andi, T0, T1, 0xF),
            Instr::rri(Slli, T0, T1, 31),
            Instr::rri(Srli, T0, T1, 0),
            Instr::rri(Srai, T0, T1, 1),
            Instr::rrr(Add, T0, T1, T2),
            Instr::rrr(Sub, T0, T1, T2),
            Instr::rrr(Sll, T0, T1, T2),
            Instr::rrr(Slt, T0, T1, T2),
            Instr::rrr(Sltu, T0, T1, T2),
            Instr::rrr(Xor, T0, T1, T2),
            Instr::rrr(Srl, T0, T1, T2),
            Instr::rrr(Sra, T0, T1, T2),
            Instr::rrr(Or, T0, T1, T2),
            Instr::rrr(And, T0, T1, T2),
            Instr::rrr(Mul, T0, T1, T2),
            Instr::rrr(Div, T0, T1, T2),
            Instr::rrr(Divu, T0, T1, T2),
            Instr::rrr(Rem, T0, T1, T2),
            Instr::rrr(Remu, T0, T1, T2),
            Instr::nop(),
            Instr {
                op: Ecall,
                ..Instr::nop()
            },
            Instr {
                op: Ebreak,
                ..Instr::nop()
            },
        ];
        for i in samples {
            let i = i.canonical();
            let w = encode_word(&i).unwrap_or_else(|e| panic!("{}: {e}", i.op));
            assert_eq!(decode_word(w).unwrap(), i, "opcode {}", i.op);
        }
    }

    #[test]
    fn unencodable_instructions_rejected() {
        use Opcode::*;
        for i in [
            Instr::load(Ld, T0, SP, 0),
            Instr::load(Lwu, T0, SP, 0),
            Instr::store(Sd, T0, SP, 0),
            Instr::rri(Lih, T0, T0, 1),
            Instr {
                op: Halt,
                ..Instr::nop()
            },
            Instr {
                op: Print,
                rs1: A0,
                ..Instr::nop()
            },
            Instr::rrr(Fadd, F0, F1, F2),
            // Out-of-field immediates and fp registers in int slots.
            Instr::rri(Addi, T0, T1, 2048),
            Instr::rri(Slli, T0, T1, 32),
            Instr::branch(Beq, T0, T1, 3),
            Instr::rri(Li, T0, Reg::ZERO, 0x1234),
            Instr::rrr(Add, F0, T1, T2),
        ] {
            assert!(encode_word(&i).is_err(), "{} must not encode", i.op);
        }
    }

    #[test]
    fn bad_words_rejected() {
        assert!(decode_word(0).is_err());
        assert!(decode_word(0xFFFF_FFFF).is_err());
        // mulh: opc 0x33, f3=1, f7=1 — outside the supported M subset.
        assert!(decode_word(r_word(1, 3, 2, 1, 1, 0x33)).is_err());
        // ld (RV64-only load, f3=3).
        assert!(decode_word(0x0000_3003).is_err());
        // System word with nonzero fields.
        assert!(decode_word(0x0020_0073).is_err());
    }

    #[test]
    fn text_round_trip_and_ragged() {
        let prog = vec![
            Instr::rri(Opcode::Addi, T0, Reg::ZERO, 10),
            Instr::rrr(Opcode::Add, T1, T0, T0),
            Instr::branch(Opcode::Bne, T1, Reg::ZERO, -4),
            Instr {
                op: Opcode::Ecall,
                ..Instr::nop()
            }
            .canonical(),
        ];
        let bytes = encode_text(&prog).unwrap();
        assert_eq!(bytes.len(), prog.len() * 4);
        assert_eq!(decode_text(&bytes).unwrap(), prog);
        assert!(decode_text(&[1, 2, 3]).is_err());
    }

    #[test]
    fn assembler_countdown_loop() {
        let p = assemble(
            "        li   t0, 5\n\
             loop:   addi t0, t0, -1\n\
                     bnez t0, loop\n\
                     li   a7, 93\n\
                     li   a0, 0\n\
                     ecall\n",
        )
        .unwrap();
        assert_eq!(p.isa(), IsaId::Rv32i);
        assert_eq!(p.len(), 6);
        assert_eq!(p.text()[2].op, Opcode::Bne);
        assert_eq!(p.text()[2].imm, -4);
        assert_eq!(p.symbol("loop"), Some(TEXT_BASE + 4));
        assert_eq!(p.text()[5].op, Opcode::Ecall);
    }

    #[test]
    fn li_and_la_expansion() {
        let p = assemble(
            "        li t1, 0x12345678\n\
                     li t2, -1\n\
                     li t3, 0x7FFFF800\n\
                     la a0, msg\n\
                     ecall\n\
                     .data\n\
             msg:    .asciz \"hi\"\n",
        )
        .unwrap();
        // li 0x12345678 -> lui + addi
        assert_eq!(
            p.text()[0],
            Instr::rri(Opcode::Li, T1, Reg::ZERO, 0x1234_5000)
        );
        assert_eq!(p.text()[1], Instr::rri(Opcode::Addi, T1, T1, 0x678));
        // li -1 -> single addi
        assert_eq!(p.text()[2], Instr::rri(Opcode::Addi, T2, Reg::ZERO, -1));
        // li 0x7FFFF800: hi wraps to -0x80000000, lo = -0x800; the
        // 32-bit executor reconstructs the value by wrap-around.
        assert_eq!(p.text()[3].imm, i64::from(i32::MIN));
        assert_eq!(p.text()[4], Instr::rri(Opcode::Addi, T3, T3, -0x800));
        // la msg: DATA_BASE = 0x100000 -> lui 0x100; addi 0.
        assert_eq!(
            p.text()[5],
            Instr::rri(Opcode::Li, A0, Reg::ZERO, 0x10_0000)
        );
        assert_eq!(p.text()[6], Instr::rri(Opcode::Addi, A0, A0, 0));
        assert_eq!(p.data(), b"hi\0");
    }

    #[test]
    fn word_directive_accepts_forward_labels() {
        let p = assemble(
            "  ecall\n\
             .data\n\
             table: .word tail, 7\n\
             tail:  .byte 1\n",
        )
        .unwrap();
        let tail = p.symbol("tail").unwrap();
        assert_eq!(tail, DATA_BASE + 8);
        assert_eq!(
            u64::from(u32::from_le_bytes(p.data()[0..4].try_into().unwrap())),
            tail
        );
    }

    #[test]
    fn assembler_errors_have_positions() {
        let e = assemble("  nop\n  halt\n").unwrap_err();
        assert_eq!((e.line, e.col), (2, 3));
        assert!(e.message.contains("unknown mnemonic"));

        let e = assemble("  fadd f1, f2, f3\n").unwrap_err();
        assert!(e.message.contains("unknown mnemonic"));

        let e = assemble("  add t0, t1, f2\n").unwrap_err();
        assert!(e.message.contains("no fp registers"));

        let e = assemble("  j nowhere\n").unwrap_err();
        assert!(e.message.contains("never bound"));

        let e = assemble("  addi t0, t1, 4096\n").unwrap_err();
        assert!(e.message.contains("not representable"));

        let e = assemble("  li t0, 0x100000000\n").unwrap_err();
        assert!(e.message.contains("does not fit in 32 bits"));
    }

    #[test]
    fn entry_and_pseudo_jumps() {
        let p = assemble(
            "        .entry main\n\
             f:      ret\n\
             main:   call f\n\
                     jal  end\n\
             end:    ecall\n",
        )
        .unwrap();
        assert_eq!(p.entry(), TEXT_BASE + 4);
        assert_eq!(p.text()[1].op, Opcode::Jal);
        assert_eq!(p.text()[1].rd, Reg::RA);
        assert_eq!(p.text()[1].imm, -4);
        // 1-operand jal links ra.
        assert_eq!(p.text()[2].rd, Reg::RA);
        assert_eq!(p.text()[2].imm, 4);
        assert_eq!(p.text()[0], Instr::rri(Opcode::Jalr, Reg::ZERO, Reg::RA, 0));
    }

    #[test]
    fn disassembly_stride_is_four() {
        let text = vec![Instr::nop(), Instr::nop()];
        let s = disassemble_text(&text, 0x1000);
        assert!(s.contains("0x00001000: nop"));
        assert!(s.contains("0x00001004: nop"));
    }

    #[test]
    fn frontend_load_flat_round_trips() {
        let p = assemble("  li t0, 7\n  ecall\n").unwrap();
        let image = p.text_image().unwrap();
        let p2 = IsaId::Rv32i.frontend().load_flat(&image).unwrap();
        assert_eq!(p2.isa(), IsaId::Rv32i);
        assert_eq!(p2.text(), p.text());
    }
}
