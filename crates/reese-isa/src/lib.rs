//! The mini RISC instruction set used by the REESE reproduction.
//!
//! This crate plays the role SimpleScalar's PISA definition and
//! assembler toolchain play for the original paper: it defines a small
//! 64-bit load/store ISA (32 integer + 32 floating-point registers),
//! a fixed-width binary encoding, a text assembler, a disassembler, and
//! a programmatic [`ProgramBuilder`] the synthetic workloads are written
//! against.
//!
//! # Quick tour
//!
//! ```
//! use reese_isa::{abi::*, assemble, ProgramBuilder};
//!
//! // Text assembly…
//! let prog = assemble("  li a0, 3\n  halt\n")?;
//! assert_eq!(prog.len(), 2);
//!
//! // …or programmatic code generation.
//! let mut b = ProgramBuilder::new();
//! b.li(A0, 3);
//! b.halt();
//! let prog2 = b.build().unwrap();
//! assert_eq!(prog.text(), prog2.text());
//! # Ok::<(), reese_isa::AsmError>(())
//! ```

mod asm;
mod builder;
mod disasm;
mod encode;
mod instr;
mod isa;
mod opcode;
mod program;
mod reg;
pub mod rv32i;

pub use asm::{assemble, AsmError};
pub use builder::{BuildError, Label, ProgramBuilder};
pub use disasm::{disassemble, disassemble_text};
pub use encode::{decode, decode_text, encode, encode_text, DecodeError, EncodeError};
pub use instr::Instr;
pub use isa::{Isa, IsaId, NativeIsa, Rv32iIsa};
pub use opcode::{FuClass, MemWidth, OpKind, Opcode};
pub use program::{Program, DATA_BASE, STACK_TOP, TEXT_BASE};
pub use reg::{abi, Reg, NUM_FP_REGS, NUM_INT_REGS, NUM_REGS};
