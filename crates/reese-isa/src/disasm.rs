//! Disassembly: turning instructions back into assembler text.
//!
//! The printed form parses back through the assembler to the same
//! instruction, which the round-trip tests rely on.

use crate::{Instr, OpKind, Opcode};
use std::fmt;

/// Formats one instruction in assembler syntax.
pub(crate) fn fmt_instr(i: &Instr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let m = i.op.mnemonic();
    match i.op.kind() {
        OpKind::Load => write!(f, "{m} {}, {}({})", i.rd, i.imm, i.rs1),
        OpKind::Store => write!(f, "{m} {}, {}({})", i.rs2, i.imm, i.rs1),
        OpKind::Branch => write!(f, "{m} {}, {}, {}", i.rs1, i.rs2, i.imm),
        OpKind::Jump => match i.op {
            Opcode::Jal => write!(f, "{m} {}, {}", i.rd, i.imm),
            _ => write!(f, "{m} {}, {}({})", i.rd, i.imm, i.rs1),
        },
        OpKind::System => match i.op {
            Opcode::Print => write!(f, "{m} {}", i.rs1),
            Opcode::Halt => write!(f, "{m} {}", i.rs1),
            _ => f.write_str(m),
        },
        OpKind::Alu => {
            if i.op == Opcode::Li || i.op == Opcode::Lih || i.op == Opcode::Auipc {
                write!(f, "{m} {}, {}", i.rd, i.imm)
            } else if i.op.uses_imm() {
                write!(f, "{m} {}, {}, {}", i.rd, i.rs1, i.imm)
            } else if i.op.reads_rs2() {
                write!(f, "{m} {}, {}, {}", i.rd, i.rs1, i.rs2)
            } else {
                write!(f, "{m} {}, {}", i.rd, i.rs1)
            }
        }
    }
}

/// Disassembles one instruction to a `String`.
///
/// # Example
///
/// ```
/// use reese_isa::{disassemble, Instr, Opcode, Reg};
///
/// let i = Instr::load(Opcode::Ld, Reg::x(1), Reg::SP, 16);
/// assert_eq!(disassemble(&i), "ld x1, 16(x2)");
/// ```
pub fn disassemble(i: &Instr) -> String {
    i.to_string()
}

/// Disassembles a text segment with addresses, one instruction per line.
pub fn disassemble_text(text: &[Instr], base: u64) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (idx, i) in text.iter().enumerate() {
        let addr = base + idx as u64 * Instr::SIZE;
        let _ = writeln!(out, "{addr:#010x}: {i}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn alu_forms() {
        assert_eq!(
            disassemble(&Instr::rrr(Opcode::Sub, Reg::x(4), Reg::x(5), Reg::x(6))),
            "sub x4, x5, x6"
        );
        assert_eq!(
            disassemble(&Instr::rri(Opcode::Addi, Reg::x(4), Reg::x(5), -4)),
            "addi x4, x5, -4"
        );
        assert_eq!(
            disassemble(&Instr::rri(Opcode::Li, Reg::x(4), Reg::ZERO, 99)),
            "li32 x4, 99"
        );
    }

    #[test]
    fn mem_forms() {
        assert_eq!(
            disassemble(&Instr::store(Opcode::Sw, Reg::x(7), Reg::x(2), -8)),
            "sw x7, -8(x2)"
        );
        assert_eq!(
            disassemble(&Instr::load(Opcode::Lbu, Reg::x(9), Reg::x(3), 1)),
            "lbu x9, 1(x3)"
        );
    }

    #[test]
    fn control_forms() {
        assert_eq!(
            disassemble(&Instr::branch(Opcode::Bge, Reg::x(1), Reg::x(2), 64)),
            "bge x1, x2, 64"
        );
        assert_eq!(
            disassemble(&Instr::rri(Opcode::Jal, Reg::RA, Reg::ZERO, 128).canonical()),
            "jal x1, 128"
        );
        assert_eq!(
            disassemble(&Instr::rri(Opcode::Jalr, Reg::ZERO, Reg::RA, 0)),
            "jalr x0, 0(x1)"
        );
    }

    #[test]
    fn fp_forms() {
        assert_eq!(
            disassemble(&Instr::rrr(Opcode::Fadd, Reg::f(1), Reg::f(2), Reg::f(3))),
            "fadd f1, f2, f3"
        );
        assert_eq!(
            disassemble(&Instr::rrr(Opcode::Fsqrt, Reg::f(1), Reg::f(2), Reg::ZERO).canonical()),
            "fsqrt f1, f2"
        );
    }

    #[test]
    fn system_forms() {
        assert_eq!(disassemble(&Instr::nop()), "nop");
        assert_eq!(
            disassemble(&Instr {
                op: Opcode::Halt,
                ..Instr::nop()
            }),
            "halt x0"
        );
        assert_eq!(
            disassemble(&Instr {
                op: Opcode::Print,
                rs1: Reg::x(10),
                ..Instr::nop()
            }),
            "print x10"
        );
    }

    #[test]
    fn text_listing_has_addresses() {
        let text = vec![Instr::nop(), Instr::nop()];
        let s = disassemble_text(&text, 0x1000);
        assert!(s.contains("0x00001000: nop"));
        assert!(s.contains("0x00001008: nop"));
    }
}
