//! Linked program images.

use crate::{EncodeError, Instr, IsaId};
use std::collections::BTreeMap;

/// Default base address of the text segment.
pub const TEXT_BASE: u64 = 0x1000;
/// Default base address of the data segment.
pub const DATA_BASE: u64 = 0x0010_0000;
/// Default initial stack pointer (grows downward).
pub const STACK_TOP: u64 = 0x7FFF_F000;

/// A fully linked program: text, initialised data, entry point, and a
/// symbol table.
///
/// Programs are produced by the [`crate::ProgramBuilder`] or the text
/// [`crate::assemble`]r, and consumed by the functional emulator and the
/// timing simulators.
///
/// # Example
///
/// ```
/// use reese_isa::{Instr, Opcode, Program, Reg};
///
/// let prog = Program::from_text(vec![
///     Instr::rri(Opcode::Li, Reg::x(1), Reg::ZERO, 7),
///     Instr { op: Opcode::Halt, ..Instr::nop() },
/// ]);
/// assert_eq!(prog.text().len(), 2);
/// assert_eq!(prog.entry(), reese_isa::TEXT_BASE);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    text: Vec<Instr>,
    text_base: u64,
    data: Vec<u8>,
    data_base: u64,
    entry: u64,
    symbols: BTreeMap<String, u64>,
    isa: IsaId,
}

impl Program {
    /// Builds a program from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the text and data segments overlap, or if `entry` does
    /// not point into the text segment.
    pub fn new(
        text: Vec<Instr>,
        text_base: u64,
        data: Vec<u8>,
        data_base: u64,
        entry: u64,
        symbols: BTreeMap<String, u64>,
    ) -> Program {
        let text_end = text_base + text.len() as u64 * Instr::SIZE;
        let data_end = data_base + data.len() as u64;
        let disjoint = text_end <= data_base || data_end <= text_base;
        assert!(
            disjoint || text.is_empty() || data.is_empty(),
            "text and data segments overlap"
        );
        assert!(
            entry >= text_base && entry < text_end.max(text_base + Instr::SIZE),
            "entry point {entry:#x} outside text segment"
        );
        Program {
            text,
            text_base,
            data,
            data_base,
            entry,
            symbols,
            isa: IsaId::Native,
        }
    }

    /// Stamps the program with the ISA it was built for. The stamp
    /// drives pc arithmetic ([`Program::fetch`], [`Program::text_end`]),
    /// the binary image format, and execution semantics downstream.
    pub fn with_isa(mut self, isa: IsaId) -> Program {
        self.isa = isa;
        self
    }

    /// The ISA this program was built for.
    pub fn isa(&self) -> IsaId {
        self.isa
    }

    /// Size in bytes of one instruction in this program's encoding.
    pub fn inst_size(&self) -> u64 {
        self.isa.inst_size()
    }

    /// Wraps a bare instruction sequence at the default bases.
    pub fn from_text(text: Vec<Instr>) -> Program {
        Program::new(
            text,
            TEXT_BASE,
            Vec::new(),
            DATA_BASE,
            TEXT_BASE,
            BTreeMap::new(),
        )
    }

    /// The instruction sequence.
    pub fn text(&self) -> &[Instr] {
        &self.text
    }

    /// Base address of the text segment.
    pub fn text_base(&self) -> u64 {
        self.text_base
    }

    /// One-past-the-end address of the text segment.
    pub fn text_end(&self) -> u64 {
        self.text_base + self.text.len() as u64 * self.inst_size()
    }

    /// The initialised data image.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Base address of the data segment.
    pub fn data_base(&self) -> u64 {
        self.data_base
    }

    /// The entry-point address.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// Symbol table (label → address).
    pub fn symbols(&self) -> &BTreeMap<String, u64> {
        &self.symbols
    }

    /// Address of a named symbol.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Fetches the instruction at an address.
    ///
    /// Returns `None` if the address is outside the text segment or not
    /// instruction-aligned.
    pub fn fetch(&self, addr: u64) -> Option<&Instr> {
        let size = self.inst_size();
        if addr < self.text_base || !(addr - self.text_base).is_multiple_of(size) {
            return None;
        }
        self.text.get(((addr - self.text_base) / size) as usize)
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Encodes the text segment into its binary image.
    ///
    /// # Errors
    ///
    /// Returns the instruction index and [`EncodeError`] for the first
    /// immediate that does not fit the encoding.
    pub fn text_image(&self) -> Result<Vec<u8>, (usize, EncodeError)> {
        self.isa.frontend().encode_text(&self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Opcode, Reg};

    fn two_instr_program() -> Program {
        Program::from_text(vec![
            Instr::rri(Opcode::Li, Reg::x(1), Reg::ZERO, 1),
            Instr {
                op: Opcode::Halt,
                ..Instr::nop()
            },
        ])
    }

    #[test]
    fn fetch_by_address() {
        let p = two_instr_program();
        assert_eq!(p.fetch(TEXT_BASE).unwrap().op, Opcode::Li);
        assert_eq!(p.fetch(TEXT_BASE + 8).unwrap().op, Opcode::Halt);
        assert_eq!(p.fetch(TEXT_BASE + 16), None);
        assert_eq!(p.fetch(TEXT_BASE + 4), None, "unaligned");
        assert_eq!(p.fetch(0), None, "below base");
    }

    #[test]
    fn segment_bounds() {
        let p = two_instr_program();
        assert_eq!(p.text_end(), TEXT_BASE + 16);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.data_base(), DATA_BASE);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_segments_panic() {
        Program::new(
            vec![Instr::nop(); 4],
            0x1000,
            vec![0; 64],
            0x1008,
            0x1000,
            BTreeMap::new(),
        );
    }

    #[test]
    #[should_panic(expected = "entry point")]
    fn entry_outside_text_panics() {
        Program::new(
            vec![Instr::nop()],
            0x1000,
            Vec::new(),
            0x2000,
            0x4000,
            BTreeMap::new(),
        );
    }

    #[test]
    fn symbols_lookup() {
        let mut syms = BTreeMap::new();
        syms.insert("main".to_string(), 0x1000);
        let p = Program::new(vec![Instr::nop()], 0x1000, Vec::new(), 0x2000, 0x1000, syms);
        assert_eq!(p.symbol("main"), Some(0x1000));
        assert_eq!(p.symbol("other"), None);
    }

    #[test]
    fn text_image_encodes() {
        let p = two_instr_program();
        assert_eq!(p.text_image().unwrap().len(), 16);
    }

    #[test]
    fn rv32i_stamp_changes_pc_arithmetic() {
        let p = two_instr_program();
        assert_eq!(p.isa(), IsaId::Native);
        let p = p.with_isa(IsaId::Rv32i);
        assert_eq!(p.isa(), IsaId::Rv32i);
        assert_eq!(p.inst_size(), 4);
        assert_eq!(p.text_end(), TEXT_BASE + 8);
        assert_eq!(p.fetch(TEXT_BASE + 4).unwrap().op, Opcode::Halt);
        assert_eq!(p.fetch(TEXT_BASE + 8), None);
        assert_eq!(p.fetch(TEXT_BASE + 2), None, "unaligned");
    }
}
