//! Architectural register names.
//!
//! The machine has 32 integer registers (`x0`–`x31`, with `x0` hardwired
//! to zero) and 32 floating-point registers (`f0`–`f31`). Internally both
//! files live in a single 64-entry architectural register space so the
//! pipeline's renaming and dependence logic can treat all operands
//! uniformly: indices `0..32` are the integer file, `32..64` the FP file.

use std::fmt;

/// Number of integer architectural registers.
pub const NUM_INT_REGS: u8 = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_REGS: u8 = 32;
/// Total architectural register-space size (int + FP).
pub const NUM_REGS: u8 = NUM_INT_REGS + NUM_FP_REGS;

/// An architectural register in the unified 64-entry space.
///
/// # Example
///
/// ```
/// use reese_isa::Reg;
///
/// let a0 = Reg::x(10);
/// assert!(a0.is_int());
/// assert_eq!(a0.to_string(), "x10");
///
/// let f2 = Reg::f(2);
/// assert!(f2.is_fp());
/// assert_eq!(f2.to_string(), "f2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero integer register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// Return-address register (`x1`, conventionally `ra`).
    pub const RA: Reg = Reg(1);
    /// Stack pointer (`x2`, conventionally `sp`).
    pub const SP: Reg = Reg(2);
    /// Global pointer (`x3`, conventionally `gp`).
    pub const GP: Reg = Reg(3);

    /// Integer register `x<i>`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub const fn x(i: u8) -> Reg {
        assert!(i < NUM_INT_REGS, "integer register index out of range");
        Reg(i)
    }

    /// Floating-point register `f<i>`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub const fn f(i: u8) -> Reg {
        assert!(i < NUM_FP_REGS, "fp register index out of range");
        Reg(NUM_INT_REGS + i)
    }

    /// Builds a register from a raw unified-space index.
    ///
    /// Returns `None` if `raw >= 64`.
    pub const fn from_raw(raw: u8) -> Option<Reg> {
        if raw < NUM_REGS {
            Some(Reg(raw))
        } else {
            None
        }
    }

    /// Raw index in the unified 64-entry space.
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// Index within its own file (0–31 for both `x` and `f` registers).
    pub const fn file_index(self) -> u8 {
        if self.0 < NUM_INT_REGS {
            self.0
        } else {
            self.0 - NUM_INT_REGS
        }
    }

    /// Whether this is an integer register.
    pub const fn is_int(self) -> bool {
        self.0 < NUM_INT_REGS
    }

    /// Whether this is a floating-point register.
    pub const fn is_fp(self) -> bool {
        self.0 >= NUM_INT_REGS
    }

    /// Whether this is the hardwired-zero register `x0`.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Parses an assembler register name.
    ///
    /// Accepts numeric names (`x7`, `f3`) and the standard ABI aliases
    /// (`zero ra sp gp tp t0-t6 s0-s11 a0-a7 fp`).
    pub fn parse(name: &str) -> Option<Reg> {
        let alias = match name {
            "zero" => Some(0),
            "ra" => Some(1),
            "sp" => Some(2),
            "gp" => Some(3),
            "tp" => Some(4),
            "t0" => Some(5),
            "t1" => Some(6),
            "t2" => Some(7),
            "s0" | "fp" => Some(8),
            "s1" => Some(9),
            "a0" => Some(10),
            "a1" => Some(11),
            "a2" => Some(12),
            "a3" => Some(13),
            "a4" => Some(14),
            "a5" => Some(15),
            "a6" => Some(16),
            "a7" => Some(17),
            "s2" => Some(18),
            "s3" => Some(19),
            "s4" => Some(20),
            "s5" => Some(21),
            "s6" => Some(22),
            "s7" => Some(23),
            "s8" => Some(24),
            "s9" => Some(25),
            "s10" => Some(26),
            "s11" => Some(27),
            "t3" => Some(28),
            "t4" => Some(29),
            "t5" => Some(30),
            "t6" => Some(31),
            _ => None,
        };
        if let Some(i) = alias {
            return Some(Reg(i));
        }
        if name.len() < 2 {
            return None;
        }
        let (file, idx) = name.split_at(1);
        let idx: u8 = idx.parse().ok()?;
        match file {
            "x" if idx < NUM_INT_REGS => Some(Reg::x(idx)),
            "f" if idx < NUM_FP_REGS => Some(Reg::f(idx)),
            _ => None,
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_int() {
            write!(f, "x{}", self.file_index())
        } else {
            write!(f, "f{}", self.file_index())
        }
    }
}

/// Common ABI register constants for hand-written code and the builder.
pub mod abi {
    use super::Reg;

    pub const ZERO: Reg = Reg::x(0);
    pub const RA: Reg = Reg::x(1);
    pub const SP: Reg = Reg::x(2);
    pub const GP: Reg = Reg::x(3);
    pub const TP: Reg = Reg::x(4);
    pub const T0: Reg = Reg::x(5);
    pub const T1: Reg = Reg::x(6);
    pub const T2: Reg = Reg::x(7);
    pub const S0: Reg = Reg::x(8);
    pub const S1: Reg = Reg::x(9);
    pub const A0: Reg = Reg::x(10);
    pub const A1: Reg = Reg::x(11);
    pub const A2: Reg = Reg::x(12);
    pub const A3: Reg = Reg::x(13);
    pub const A4: Reg = Reg::x(14);
    pub const A5: Reg = Reg::x(15);
    pub const A6: Reg = Reg::x(16);
    pub const A7: Reg = Reg::x(17);
    pub const S2: Reg = Reg::x(18);
    pub const S3: Reg = Reg::x(19);
    pub const S4: Reg = Reg::x(20);
    pub const S5: Reg = Reg::x(21);
    pub const S6: Reg = Reg::x(22);
    pub const S7: Reg = Reg::x(23);
    pub const S8: Reg = Reg::x(24);
    pub const S9: Reg = Reg::x(25);
    pub const S10: Reg = Reg::x(26);
    pub const S11: Reg = Reg::x(27);
    pub const T3: Reg = Reg::x(28);
    pub const T4: Reg = Reg::x(29);
    pub const T5: Reg = Reg::x(30);
    pub const T6: Reg = Reg::x(31);
    pub const F0: Reg = Reg::f(0);
    pub const F1: Reg = Reg::f(1);
    pub const F2: Reg = Reg::f(2);
    pub const F3: Reg = Reg::f(3);
    pub const F4: Reg = Reg::f(4);
    pub const F5: Reg = Reg::f(5);
    pub const F6: Reg = Reg::f(6);
    pub const F7: Reg = Reg::f(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_spaces_disjoint() {
        assert_ne!(Reg::x(5), Reg::f(5));
        assert_eq!(Reg::x(5).file_index(), Reg::f(5).file_index());
        assert!(Reg::x(5).is_int());
        assert!(Reg::f(5).is_fp());
    }

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::x(1).is_zero());
        assert!(!Reg::f(0).is_zero());
    }

    #[test]
    fn raw_round_trip() {
        for raw in 0..NUM_REGS {
            let r = Reg::from_raw(raw).unwrap();
            assert_eq!(r.raw(), raw);
        }
        assert_eq!(Reg::from_raw(NUM_REGS), None);
        assert_eq!(Reg::from_raw(255), None);
    }

    #[test]
    fn parse_numeric_names() {
        assert_eq!(Reg::parse("x0"), Some(Reg::ZERO));
        assert_eq!(Reg::parse("x31"), Some(Reg::x(31)));
        assert_eq!(Reg::parse("f31"), Some(Reg::f(31)));
        assert_eq!(Reg::parse("x32"), None);
        assert_eq!(Reg::parse("f32"), None);
        assert_eq!(Reg::parse("y1"), None);
        assert_eq!(Reg::parse(""), None);
        assert_eq!(Reg::parse("x"), None);
    }

    #[test]
    fn parse_abi_aliases() {
        assert_eq!(Reg::parse("zero"), Some(Reg::x(0)));
        assert_eq!(Reg::parse("ra"), Some(Reg::x(1)));
        assert_eq!(Reg::parse("sp"), Some(Reg::x(2)));
        assert_eq!(Reg::parse("a0"), Some(Reg::x(10)));
        assert_eq!(Reg::parse("t6"), Some(Reg::x(31)));
        assert_eq!(Reg::parse("s11"), Some(Reg::x(27)));
        assert_eq!(Reg::parse("fp"), Some(Reg::x(8)));
    }

    #[test]
    fn display_round_trips_through_parse() {
        for raw in 0..NUM_REGS {
            let r = Reg::from_raw(raw).unwrap();
            assert_eq!(Reg::parse(&r.to_string()), Some(r));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn x_out_of_range_panics() {
        Reg::x(32);
    }
}
