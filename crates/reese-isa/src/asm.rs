//! A two-pass text assembler built on [`ProgramBuilder`].
//!
//! Supported syntax (one statement per line):
//!
//! ```text
//! # comment                      ; '#' or '//' start a comment
//!         .text                  ; switch to the text segment (default)
//! main:   li   a0, 100           ; labels end with ':'
//! loop:   addi a0, a0, -1
//!         bnez a0, loop          ; branch targets: label or numeric offset
//!         sd   a0, 8(sp)         ; memory operands: off(base)
//!         halt
//!         .data                  ; switch to the data segment
//! arr:    .dword 1, 2, 3         ; also .byte .half .word .space .align .asciz
//! msg:    .asciz "hello"
//! ```
//!
//! Pseudo-instructions: `nop li la mv neg not seqz snez beqz bnez bltz
//! bgez ble bgt j jr call ret halt print`.

use crate::{BuildError, Opcode, Program, ProgramBuilder, Reg};
use std::fmt;

/// Error produced by [`assemble`], with a 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending statement (0 for link-time
    /// errors with no single source line).
    pub line: usize,
    /// 1-based column of the offending token (0 when the whole line is
    /// at fault or the column is unknown).
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl AsmError {
    pub(crate) fn new(line: usize, message: String) -> AsmError {
        AsmError {
            line,
            col: 0,
            message,
        }
    }

    pub(crate) fn at(line: usize, col: usize, message: String) -> AsmError {
        AsmError { line, col, message }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(f, "line {}:{}: {}", self.line, self.col, self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

impl From<BuildError> for AsmError {
    fn from(e: BuildError) -> Self {
        AsmError::new(0, e.to_string())
    }
}

/// 1-based column of `token` within `raw` (0 if `token` is not a
/// subslice of `raw`). Tokens are always subslices of their source
/// line, so this recovers the column without tracking offsets.
pub(crate) fn col_in(raw: &str, token: &str) -> usize {
    let raw_start = raw.as_ptr() as usize;
    let tok_start = token.as_ptr() as usize;
    if tok_start >= raw_start && tok_start + token.len() <= raw_start + raw.len() {
        tok_start - raw_start + 1
    } else {
        0
    }
}

/// Strips a trailing comment (`#`, `//`, or `;`) outside string
/// literals, so `.asciz "a#b"` keeps its hash.
pub(crate) fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'#' | b';' => return &line[..i],
            b'/' if bytes.get(i + 1) == Some(&b'/') => return &line[..i],
            _ => {}
        }
    }
    line
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Text,
    Data,
}

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the first offending line for syntax
/// errors, unknown mnemonics/registers, malformed operands, or unbound
/// labels.
///
/// # Example
///
/// ```
/// let prog = reese_isa::assemble(
///     "        li   t0, 5\n\
///      loop:   addi t0, t0, -1\n\
///              bnez t0, loop\n\
///              halt\n",
/// )?;
/// assert_eq!(prog.len(), 4);
/// # Ok::<(), reese_isa::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new();
    let mut segment = Segment::Text;

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;

        // Strip comments (string-literal aware) and surrounding space.
        let mut code = strip_comment(raw).trim();

        // Peel off any leading labels.
        while let Some(colon) = code.find(':') {
            let (name, rest) = code.split_at(colon);
            let name = name.trim();
            if name.is_empty() || !is_ident(name) {
                return Err(AsmError::at(
                    line,
                    col_in(raw, name),
                    format!("bad label `{name}`"),
                ));
            }
            let l = b.label(name);
            if b.is_bound(l) {
                return Err(AsmError::at(
                    line,
                    col_in(raw, name),
                    format!("label `{name}` defined twice"),
                ));
            }
            match segment {
                Segment::Text => {
                    b.bind(l);
                }
                Segment::Data => {
                    // `data_label` binds by name; re-resolve in data space.
                    b.bind_data(l);
                }
            }
            code = rest[1..].trim();
        }
        if code.is_empty() {
            continue;
        }

        if let Some(directive) = code.strip_prefix('.') {
            parse_directive(&mut b, &mut segment, directive, raw, line)?;
            continue;
        }

        if segment == Segment::Data {
            return Err(AsmError::at(
                line,
                col_in(raw, code),
                "instructions are not allowed in .data".to_string(),
            ));
        }
        parse_instruction(&mut b, code, raw, line)?;
    }

    b.build().map_err(AsmError::from)
}

pub(crate) fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

pub(crate) fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_directive(
    b: &mut ProgramBuilder,
    segment: &mut Segment,
    directive: &str,
    raw: &str,
    line: usize,
) -> Result<(), AsmError> {
    let err = |tok: &str, message: String| AsmError::at(line, col_in(raw, tok), message);
    let (name, args) = match directive.find(char::is_whitespace) {
        Some(pos) => (&directive[..pos], directive[pos..].trim()),
        None => (directive, ""),
    };
    let ints = |args: &str| -> Result<Vec<i64>, AsmError> {
        args.split(',')
            .map(|a| {
                parse_int(a).ok_or_else(|| err(a.trim(), format!("bad integer `{}`", a.trim())))
            })
            .collect()
    };
    // `.word`/`.dword` accept labels alongside integers; label slots
    // are patched with the final address at build time, so forward
    // references inside data are safe.
    let words = |b: &mut ProgramBuilder, args: &str, wide: bool| -> Result<(), AsmError> {
        for a in args.split(',') {
            let a = a.trim();
            if let Some(v) = parse_int(a) {
                if wide {
                    b.dword(v as u64);
                } else {
                    b.word(v as u32);
                }
            } else if is_ident(a) {
                let l = b.label(a);
                if wide {
                    b.dword_label(l);
                } else {
                    b.word_label(l);
                }
            } else {
                return Err(err(a, format!("bad integer or label `{a}`")));
            }
        }
        Ok(())
    };
    match name {
        "text" => *segment = Segment::Text,
        "data" => *segment = Segment::Data,
        "globl" | "global" => {} // accepted and ignored
        "entry" => {
            if !is_ident(args) {
                return Err(err(args, format!("bad entry label `{args}`")));
            }
            let l = b.label(args);
            b.entry(l);
        }
        "byte" => {
            for v in ints(args)? {
                b.byte(v as u8);
            }
        }
        "half" => {
            for v in ints(args)? {
                b.bytes(&(v as u16).to_le_bytes());
            }
        }
        "word" => words(b, args, false)?,
        "dword" => words(b, args, true)?,
        "space" => {
            let n = parse_int(args).ok_or_else(|| err(args, format!("bad size `{args}`")))?;
            if n < 0 {
                return Err(err(args, "negative .space".to_string()));
            }
            b.space(n as usize);
        }
        "align" => {
            let n = parse_int(args).ok_or_else(|| err(args, format!("bad alignment `{args}`")))?;
            if n <= 0 || !(n as u64).is_power_of_two() {
                return Err(err(
                    args,
                    format!("alignment must be a positive power of two, got {n}"),
                ));
            }
            b.align(n as usize);
        }
        "asciz" | "string" => {
            let s = args
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| err(args, "expected a quoted string".to_string()))?;
            b.asciz(&unescape(s));
        }
        other => return Err(err(name, format!("unknown directive `.{other}`"))),
    }
    Ok(())
}

pub(crate) fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('0') => out.push('\0'),
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Splits `off(base)` into its parts.
pub(crate) fn parse_mem_operand(s: &str) -> Option<(i64, Reg)> {
    let open = s.find('(')?;
    let close = s.rfind(')')?;
    if close != s.len() - 1 {
        return None;
    }
    let off_str = s[..open].trim();
    let off = if off_str.is_empty() {
        0
    } else {
        parse_int(off_str)?
    };
    let base = Reg::parse(s[open + 1..close].trim())?;
    Some((off, base))
}

fn parse_instruction(
    b: &mut ProgramBuilder,
    code: &str,
    raw: &str,
    line: usize,
) -> Result<(), AsmError> {
    let err = |tok: &str, message: String| AsmError::at(line, col_in(raw, tok), message);
    let (mnemonic, rest) = match code.find(char::is_whitespace) {
        Some(pos) => (&code[..pos], code[pos..].trim()),
        None => (code, ""),
    };
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };

    let reg = |s: &str| Reg::parse(s).ok_or_else(|| err(s, format!("bad register `{s}`")));
    let imm = |s: &str| parse_int(s).ok_or_else(|| err(s, format!("bad immediate `{s}`")));
    let nops = |want: usize| -> Result<(), AsmError> {
        if ops.len() == want {
            Ok(())
        } else {
            Err(err(
                mnemonic,
                format!("`{mnemonic}` expects {want} operands, got {}", ops.len()),
            ))
        }
    };

    // Pseudo-instructions and special forms first.
    match mnemonic {
        "nop" => {
            nops(0)?;
            b.nop();
            return Ok(());
        }
        "halt" => {
            // `halt` defaults the exit-code register to a0; `halt rs`
            // names it explicitly (the form the disassembler prints).
            match ops.len() {
                0 => b.halt(),
                1 => {
                    let rs = reg(ops[0])?;
                    b.emit(crate::Instr {
                        op: Opcode::Halt,
                        rs1: rs,
                        ..crate::Instr::nop()
                    })
                }
                n => {
                    return Err(err(
                        mnemonic,
                        format!("`halt` expects 0 or 1 operands, got {n}"),
                    ))
                }
            };
            return Ok(());
        }
        "print" => {
            nops(1)?;
            let r = reg(ops[0])?;
            b.print(r);
            return Ok(());
        }
        "li" => {
            nops(2)?;
            let (rd, v) = (reg(ops[0])?, imm(ops[1])?);
            b.li(rd, v);
            return Ok(());
        }
        "la" => {
            nops(2)?;
            let rd = reg(ops[0])?;
            if !is_ident(ops[1]) {
                return Err(err(ops[1], format!("bad label `{}`", ops[1])));
            }
            let l = b.label(ops[1]);
            b.la(rd, l);
            return Ok(());
        }
        "mv" => {
            nops(2)?;
            let (rd, rs) = (reg(ops[0])?, reg(ops[1])?);
            b.mv(rd, rs);
            return Ok(());
        }
        "neg" => {
            nops(2)?;
            let (rd, rs) = (reg(ops[0])?, reg(ops[1])?);
            b.neg(rd, rs);
            return Ok(());
        }
        "not" => {
            nops(2)?;
            let (rd, rs) = (reg(ops[0])?, reg(ops[1])?);
            b.not(rd, rs);
            return Ok(());
        }
        "seqz" => {
            nops(2)?;
            let (rd, rs) = (reg(ops[0])?, reg(ops[1])?);
            b.seqz(rd, rs);
            return Ok(());
        }
        "snez" => {
            nops(2)?;
            let (rd, rs) = (reg(ops[0])?, reg(ops[1])?);
            b.snez(rd, rs);
            return Ok(());
        }
        "j" => {
            nops(1)?;
            let l = label_ref(b, ops[0], raw, line)?;
            b.j(l);
            return Ok(());
        }
        "jr" => {
            nops(1)?;
            let rs = reg(ops[0])?;
            b.jalr(Reg::ZERO, rs, 0);
            return Ok(());
        }
        "call" => {
            nops(1)?;
            let l = label_ref(b, ops[0], raw, line)?;
            b.call(l);
            return Ok(());
        }
        "ret" => {
            nops(0)?;
            b.ret();
            return Ok(());
        }
        "beqz" | "bnez" | "bltz" | "bgez" => {
            nops(2)?;
            let rs = reg(ops[0])?;
            let l = label_ref(b, ops[1], raw, line)?;
            match mnemonic {
                "beqz" => b.beqz(rs, l),
                "bnez" => b.bnez(rs, l),
                "bltz" => b.bltz(rs, l),
                _ => b.bgez(rs, l),
            };
            return Ok(());
        }
        "ble" | "bgt" => {
            nops(3)?;
            let (r1, r2) = (reg(ops[0])?, reg(ops[1])?);
            let l = label_ref(b, ops[2], raw, line)?;
            if mnemonic == "ble" {
                b.ble(r1, r2, l);
            } else {
                b.bgt(r1, r2, l);
            }
            return Ok(());
        }
        _ => {}
    }

    let op = Opcode::from_mnemonic(mnemonic)
        .ok_or_else(|| err(mnemonic, format!("unknown mnemonic `{mnemonic}`")))?;

    use crate::{Instr, OpKind};
    match op.kind() {
        OpKind::Load => {
            nops(2)?;
            let rd = reg(ops[0])?;
            let (off, base) = parse_mem_operand(ops[1])
                .ok_or_else(|| err(ops[1], format!("bad memory operand `{}`", ops[1])))?;
            b.emit(Instr::load(op, rd, base, off));
        }
        OpKind::Store => {
            nops(2)?;
            let src = reg(ops[0])?;
            let (off, base) = parse_mem_operand(ops[1])
                .ok_or_else(|| err(ops[1], format!("bad memory operand `{}`", ops[1])))?;
            b.emit(Instr::store(op, src, base, off));
        }
        OpKind::Branch => {
            nops(3)?;
            let (r1, r2) = (reg(ops[0])?, reg(ops[1])?);
            if let Some(off) = parse_int(ops[2]) {
                b.emit(Instr::branch(op, r1, r2, off));
            } else {
                let l = label_ref(b, ops[2], raw, line)?;
                match op {
                    Opcode::Beq => b.beq(r1, r2, l),
                    Opcode::Bne => b.bne(r1, r2, l),
                    Opcode::Blt => b.blt(r1, r2, l),
                    Opcode::Bge => b.bge(r1, r2, l),
                    Opcode::Bltu => b.bltu(r1, r2, l),
                    Opcode::Bgeu => b.bgeu(r1, r2, l),
                    _ => unreachable!("branch kind covers only branch opcodes"),
                };
            }
        }
        OpKind::Jump => match op {
            Opcode::Jal => {
                nops(2)?;
                let rd = reg(ops[0])?;
                if let Some(off) = parse_int(ops[1]) {
                    b.emit(Instr::rri(Opcode::Jal, rd, Reg::ZERO, off));
                } else {
                    let l = label_ref(b, ops[1], raw, line)?;
                    b.jal(rd, l);
                }
            }
            _ => {
                // jalr rd, off(rs1)
                nops(2)?;
                let rd = reg(ops[0])?;
                let (off, base) = parse_mem_operand(ops[1])
                    .ok_or_else(|| err(ops[1], format!("bad memory operand `{}`", ops[1])))?;
                b.jalr(rd, base, off);
            }
        },
        OpKind::System => match op {
            Opcode::Halt => {
                nops(1)?;
                let rs = reg(ops[0])?;
                b.emit(Instr {
                    op,
                    rs1: rs,
                    ..Instr::nop()
                });
            }
            Opcode::Print => {
                nops(1)?;
                let rs = reg(ops[0])?;
                b.print(rs);
            }
            Opcode::Ecall | Opcode::Ebreak => {
                nops(0)?;
                b.emit(Instr { op, ..Instr::nop() }.canonical());
            }
            _ => {
                nops(0)?;
                b.nop();
            }
        },
        OpKind::Alu => {
            if op == Opcode::Li || op == Opcode::Lih || op == Opcode::Auipc {
                nops(2)?;
                let (rd, v) = (reg(ops[0])?, imm(ops[1])?);
                let rs1 = if op == Opcode::Lih { rd } else { Reg::ZERO };
                b.emit(Instr {
                    op,
                    rd,
                    rs1,
                    rs2: Reg::ZERO,
                    imm: v,
                });
            } else if op.uses_imm() {
                nops(3)?;
                let (rd, rs1, v) = (reg(ops[0])?, reg(ops[1])?, imm(ops[2])?);
                b.emit(Instr::rri(op, rd, rs1, v));
            } else if op.reads_rs2() {
                nops(3)?;
                let (rd, rs1, rs2) = (reg(ops[0])?, reg(ops[1])?, reg(ops[2])?);
                b.emit(Instr::rrr(op, rd, rs1, rs2));
            } else {
                nops(2)?;
                let (rd, rs1) = (reg(ops[0])?, reg(ops[1])?);
                b.emit(Instr::rrr(op, rd, rs1, Reg::ZERO));
            }
        }
    }
    Ok(())
}

fn label_ref(
    b: &mut ProgramBuilder,
    s: &str,
    raw: &str,
    line: usize,
) -> Result<crate::Label, AsmError> {
    if is_ident(s) {
        Ok(b.label(s))
    } else {
        Err(AsmError::at(
            line,
            col_in(raw, s),
            format!("bad label `{s}`"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpKind, TEXT_BASE};

    #[test]
    fn countdown_loop() {
        let p = assemble(
            "        li   t0, 5\n\
             loop:   addi t0, t0, -1\n\
                     bnez t0, loop\n\
                     halt\n",
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.text()[2].op, Opcode::Bne);
        assert_eq!(p.text()[2].imm, -8);
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = assemble("# leading comment\n\n  nop // trailing\n  halt ; also\n").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn data_segment_and_la() {
        let p = assemble(
            "        la   a0, arr\n\
                     ld   a1, 8(a0)\n\
                     halt\n\
                     .data\n\
             arr:    .dword 10, 20, 30\n",
        )
        .unwrap();
        assert_eq!(p.data().len(), 24);
        assert_eq!(p.symbol("arr"), Some(crate::DATA_BASE));
        assert_eq!(&p.data()[8..16], &20u64.to_le_bytes());
    }

    #[test]
    fn mem_operand_forms() {
        let p = assemble("  lw x5, -4(sp)\n  sw x5, (sp)\n  halt\n").unwrap();
        assert_eq!(p.text()[0].imm, -4);
        assert_eq!(p.text()[1].imm, 0);
        assert_eq!(p.text()[1].rs2, Reg::x(5));
        assert_eq!(p.text()[1].rs1, Reg::SP);
    }

    #[test]
    fn call_ret_and_entry() {
        let p = assemble(
            "        .entry main\n\
             f:      ret\n\
             main:   call f\n\
                     halt\n",
        )
        .unwrap();
        assert_eq!(p.entry(), TEXT_BASE + 8);
        assert_eq!(p.text()[1].op, Opcode::Jal);
        assert_eq!(p.text()[1].rd, Reg::RA);
        assert_eq!(p.text()[1].imm, -8);
    }

    #[test]
    fn numeric_branch_offsets() {
        let p = assemble("  beq x1, x2, 16\n  jal x0, -8\n  halt\n").unwrap();
        assert_eq!(p.text()[0].imm, 16);
        assert_eq!(p.text()[1].imm, -8);
    }

    #[test]
    fn directives_emit_data() {
        let p = assemble(
            "  halt\n  .data\n  .byte 1, 2\n  .half 0x0304\n  .word 5\n  .align 8\n  .space 4\n  .asciz \"a\\n\"\n",
        )
        .unwrap();
        let d = p.data();
        assert_eq!(&d[..2], &[1, 2]);
        assert_eq!(&d[2..4], &[4, 3]);
        assert_eq!(d.len(), 8 + 4 + 3);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("  nop\n  bogus x1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble("  addi t0, t0\n").unwrap_err();
        assert!(e.message.contains("expects 3 operands"));

        let e = assemble("  lw t0, t1\n").unwrap_err();
        assert!(e.message.contains("memory operand"));

        let e = assemble("  li t0, zzz\n").unwrap_err();
        assert!(e.message.contains("bad immediate"));

        let e = assemble("  j nowhere\n").unwrap_err();
        assert!(e.message.contains("never bound"));
    }

    #[test]
    fn errors_carry_column_numbers() {
        let e = assemble("  nop\n  bogus x1\n").unwrap_err();
        assert_eq!((e.line, e.col), (2, 3));
        assert!(e.to_string().contains("line 2:3:"));

        let e = assemble("  addi t0, zz, 1\n").unwrap_err();
        assert_eq!(e.col, 12);
        assert!(e.message.contains("bad register"));

        let e = assemble("  li t0, zzz\n").unwrap_err();
        assert_eq!(e.col, 10);
    }

    #[test]
    fn comment_markers_inside_strings_are_data() {
        let p = assemble("  halt\n  .data\n  .asciz \"a#b;c//d\"\n").unwrap();
        assert_eq!(p.data(), b"a#b;c//d\0");
    }

    #[test]
    fn word_directives_accept_forward_label_references() {
        // `tail` is bound *after* the table; the table slots must hold
        // its final address, not a stale offset.
        let p = assemble(
            "  halt\n\
             .data\n\
             table: .dword tail, 7\n\
             .word tail, 1\n\
             tail:  .byte 9\n",
        )
        .unwrap();
        let tail = p.symbol("tail").unwrap();
        assert_eq!(tail, crate::DATA_BASE + 8 + 8 + 4 + 4);
        let d = p.data();
        assert_eq!(u64::from_le_bytes(d[0..8].try_into().unwrap()), tail);
        assert_eq!(u64::from_le_bytes(d[8..16].try_into().unwrap()), 7);
        assert_eq!(
            u64::from(u32::from_le_bytes(d[16..20].try_into().unwrap())),
            tail
        );

        let e = assemble("  halt\n  .data\n  .word 1+2\n").unwrap_err();
        assert!(e.message.contains("bad integer or label"));
    }

    #[test]
    fn ecall_and_ebreak_assemble() {
        let p = assemble("  ecall\n  ebreak\n  halt\n").unwrap();
        assert_eq!(p.text()[0].op, Opcode::Ecall);
        assert_eq!(p.text()[0].rs1, crate::abi::A7);
        assert_eq!(p.text()[0].rs2, crate::abi::A0);
        assert_eq!(p.text()[1].op, Opcode::Ebreak);
        let e = assemble("  ecall x1\n").unwrap_err();
        assert!(e.message.contains("expects 0 operands"));
    }

    #[test]
    fn instructions_rejected_in_data() {
        let e = assemble("  .data\n  nop\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unknown_directive_rejected() {
        let e = assemble("  .wibble\n").unwrap_err();
        assert!(e.message.contains("wibble"));
    }

    #[test]
    fn disassembly_reassembles_identically() {
        // Round-trip every non-pseudo instruction form through
        // disassemble → assemble.
        let src = "        li32 x5, -100\n\
                   lih  x5, 255\n\
                   add  x1, x2, x3\n\
                   mul  x4, x5, x6\n\
                   srai x7, x8, 3\n\
                   ld   x9, 16(x2)\n\
                   sd   x9, -16(x2)\n\
                   beq  x1, x2, 32\n\
                   jal  x1, -16\n\
                   jalr x0, 0(x1)\n\
                   fadd f1, f2, f3\n\
                   fsqrt f4, f5\n\
                   print x10\n\
                   nop\n\
                   halt x10\n";
        let p1 = assemble(src).unwrap();
        let listing: String = p1.text().iter().map(|i| format!("  {i}\n")).collect();
        let p2 = assemble(&listing).unwrap();
        assert_eq!(p1.text(), p2.text());
    }

    #[test]
    fn fp_registers_parse() {
        let p = assemble("  fadd f1, f2, f3\n  fld f1, 0(sp)\n  fsd f1, 8(sp)\n  halt\n").unwrap();
        assert_eq!(p.text()[0].rd, Reg::f(1));
        assert_eq!(p.text()[1].op.kind(), OpKind::Load);
        assert_eq!(p.text()[2].rs2, Reg::f(1));
    }
}
