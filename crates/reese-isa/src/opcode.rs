//! The instruction set: opcodes and their static properties.

use std::fmt;

/// Functional-unit class an instruction executes on.
///
/// This is what the REESE evaluation varies: the paper's "spare
/// elements" are extra [`FuClass::IntAlu`] and [`FuClass::IntMulDiv`]
/// instances. Memory instructions occupy a *memory port* rather than a
/// conventional functional unit, mirroring SimpleScalar's read/write
/// ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuClass {
    /// Integer ALU: arithmetic, logic, shifts, compares, branches, jumps.
    IntAlu,
    /// Integer multiplier/divider.
    IntMulDiv,
    /// Floating-point adder (also FP compares, conversions, moves).
    FpAlu,
    /// Floating-point multiplier/divider/square root.
    FpMulDiv,
    /// Memory port (loads and stores).
    MemPort,
}

impl FuClass {
    /// All classes, in display order.
    pub const ALL: [FuClass; 5] = [
        FuClass::IntAlu,
        FuClass::IntMulDiv,
        FuClass::FpAlu,
        FuClass::FpMulDiv,
        FuClass::MemPort,
    ];
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::IntAlu => "int-alu",
            FuClass::IntMulDiv => "int-muldiv",
            FuClass::FpAlu => "fp-alu",
            FuClass::FpMulDiv => "fp-muldiv",
            FuClass::MemPort => "mem-port",
        };
        f.write_str(s)
    }
}

/// Broad behavioural category of an opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Register-to-register or register-immediate computation.
    Alu,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump (`jal`, `jalr`).
    Jump,
    /// Environment interaction (`halt`, `print`, …).
    System,
}

/// Width of a memory access in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    B1,
    B2,
    B4,
    B8,
}

impl MemWidth {
    /// Access size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

macro_rules! opcodes {
    ($( $(#[$meta:meta])* $name:ident = $code:literal => $mnemonic:literal ),+ $(,)?) => {
        /// Every operation in the mini ISA.
        ///
        /// The discriminant values are the stable binary encoding bytes
        /// used by [`crate::encode`]; they must never be reused or
        /// renumbered.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum Opcode {
            $( $(#[$meta])* $name = $code ),+
        }

        impl Opcode {
            /// All opcodes, for exhaustive tests and tooling.
            pub const ALL: &'static [Opcode] = &[ $(Opcode::$name),+ ];

            /// Decodes a stable encoding byte back into an opcode.
            pub const fn from_code(code: u8) -> Option<Opcode> {
                match code {
                    $( $code => Some(Opcode::$name), )+
                    _ => None,
                }
            }

            /// The assembler mnemonic.
            pub const fn mnemonic(self) -> &'static str {
                match self {
                    $( Opcode::$name => $mnemonic, )+
                }
            }

            /// Looks an opcode up by its assembler mnemonic.
            pub fn from_mnemonic(m: &str) -> Option<Opcode> {
                match m {
                    $( $mnemonic => Some(Opcode::$name), )+
                    _ => None,
                }
            }
        }
    };
}

opcodes! {
    // -- integer register-register -------------------------------------
    /// `rd = rs1 + rs2`
    Add = 0x01 => "add",
    /// `rd = rs1 - rs2`
    Sub = 0x02 => "sub",
    /// `rd = rs1 * rs2` (low 64 bits)
    Mul = 0x03 => "mul",
    /// `rd = rs1 / rs2` signed; by convention `x / 0 = -1`
    Div = 0x04 => "div",
    /// `rd = rs1 % rs2` signed; by convention `x % 0 = x`
    Rem = 0x05 => "rem",
    /// `rd = rs1 / rs2` unsigned; by convention `x / 0 = u64::MAX`
    Divu = 0x06 => "divu",
    /// `rd = rs1 % rs2` unsigned; by convention `x % 0 = x`
    Remu = 0x07 => "remu",
    /// `rd = rs1 & rs2`
    And = 0x08 => "and",
    /// `rd = rs1 | rs2`
    Or = 0x09 => "or",
    /// `rd = rs1 ^ rs2`
    Xor = 0x0A => "xor",
    /// `rd = rs1 << (rs2 & 63)`
    Sll = 0x0B => "sll",
    /// `rd = rs1 >> (rs2 & 63)` logical
    Srl = 0x0C => "srl",
    /// `rd = rs1 >> (rs2 & 63)` arithmetic
    Sra = 0x0D => "sra",
    /// `rd = (rs1 < rs2) ? 1 : 0` signed
    Slt = 0x0E => "slt",
    /// `rd = (rs1 < rs2) ? 1 : 0` unsigned
    Sltu = 0x0F => "sltu",

    // -- integer register-immediate ------------------------------------
    /// `rd = rs1 + imm`
    Addi = 0x10 => "addi",
    /// `rd = rs1 & imm`
    Andi = 0x11 => "andi",
    /// `rd = rs1 | imm`
    Ori = 0x12 => "ori",
    /// `rd = rs1 ^ imm`
    Xori = 0x13 => "xori",
    /// `rd = rs1 << (imm & 63)`
    Slli = 0x14 => "slli",
    /// `rd = rs1 >> (imm & 63)` logical
    Srli = 0x15 => "srli",
    /// `rd = rs1 >> (imm & 63)` arithmetic
    Srai = 0x16 => "srai",
    /// `rd = (rs1 < imm) ? 1 : 0` signed
    Slti = 0x17 => "slti",
    /// `rd = (rs1 < imm) ? 1 : 0` unsigned
    Sltiu = 0x18 => "sltiu",
    /// `rd = sign_extend(imm32)` — load 32-bit immediate
    Li = 0x19 => "li32",
    /// `rd = (imm32 << 32) | (rd & 0xFFFF_FFFF)` — set high half
    Lih = 0x1A => "lih",
    /// `rd = pc + imm` — pc-relative upper-immediate add (RV32I AUIPC)
    Auipc = 0x1B => "auipc",

    // -- loads ----------------------------------------------------------
    /// `rd = sext(mem8[rs1 + imm])`
    Lb = 0x20 => "lb",
    /// `rd = zext(mem8[rs1 + imm])`
    Lbu = 0x21 => "lbu",
    /// `rd = sext(mem16[rs1 + imm])`
    Lh = 0x22 => "lh",
    /// `rd = zext(mem16[rs1 + imm])`
    Lhu = 0x23 => "lhu",
    /// `rd = sext(mem32[rs1 + imm])`
    Lw = 0x24 => "lw",
    /// `rd = zext(mem32[rs1 + imm])`
    Lwu = 0x25 => "lwu",
    /// `rd = mem64[rs1 + imm]`
    Ld = 0x26 => "ld",
    /// `fd = mem64[rs1 + imm]` (FP load, bit pattern)
    Fld = 0x27 => "fld",

    // -- stores ---------------------------------------------------------
    /// `mem8[rs1 + imm] = rs2`
    Sb = 0x28 => "sb",
    /// `mem16[rs1 + imm] = rs2`
    Sh = 0x29 => "sh",
    /// `mem32[rs1 + imm] = rs2`
    Sw = 0x2A => "sw",
    /// `mem64[rs1 + imm] = rs2`
    Sd = 0x2B => "sd",
    /// `mem64[rs1 + imm] = fs2` (FP store, bit pattern)
    Fsd = 0x2C => "fsd",

    // -- control flow -----------------------------------------------------
    /// branch if `rs1 == rs2` to `pc + imm`
    Beq = 0x30 => "beq",
    /// branch if `rs1 != rs2` to `pc + imm`
    Bne = 0x31 => "bne",
    /// branch if `rs1 < rs2` (signed) to `pc + imm`
    Blt = 0x32 => "blt",
    /// branch if `rs1 >= rs2` (signed) to `pc + imm`
    Bge = 0x33 => "bge",
    /// branch if `rs1 < rs2` (unsigned) to `pc + imm`
    Bltu = 0x34 => "bltu",
    /// branch if `rs1 >= rs2` (unsigned) to `pc + imm`
    Bgeu = 0x35 => "bgeu",
    /// `rd = pc + 8; pc += imm`
    Jal = 0x36 => "jal",
    /// `rd = pc + 8; pc = rs1 + imm`
    Jalr = 0x37 => "jalr",

    // -- floating point ---------------------------------------------------
    /// `fd = fs1 + fs2`
    Fadd = 0x40 => "fadd",
    /// `fd = fs1 - fs2`
    Fsub = 0x41 => "fsub",
    /// `fd = fs1 * fs2`
    Fmul = 0x42 => "fmul",
    /// `fd = fs1 / fs2`
    Fdiv = 0x43 => "fdiv",
    /// `fd = sqrt(fs1)`
    Fsqrt = 0x44 => "fsqrt",
    /// `fd = min(fs1, fs2)`
    Fmin = 0x45 => "fmin",
    /// `fd = max(fs1, fs2)`
    Fmax = 0x46 => "fmax",
    /// `rd = (fs1 == fs2) ? 1 : 0`
    Feq = 0x47 => "feq",
    /// `rd = (fs1 < fs2) ? 1 : 0`
    Flt = 0x48 => "flt",
    /// `rd = (fs1 <= fs2) ? 1 : 0`
    Fle = 0x49 => "fle",
    /// `fd = (f64)(i64)rs1` — int to float
    Fcvtif = 0x4A => "fcvt.d.l",
    /// `rd = (i64)fs1` — float to int, saturating
    Fcvtfi = 0x4B => "fcvt.l.d",
    /// `fd = bits(rs1)` — move int bits into FP register
    Fmvif = 0x4C => "fmv.d.x",
    /// `rd = bits(fs1)` — move FP bits into int register
    Fmvfi = 0x4D => "fmv.x.d",

    // -- system -----------------------------------------------------------
    /// Stop the machine; `rs1` is the exit code register.
    Halt = 0x50 => "halt",
    /// Append the integer value of `rs1` to the machine's output log.
    Print = 0x51 => "print",
    /// No operation.
    Nop = 0x52 => "nop",
    /// Environment call (RV32I ECALL): `rs1` carries the syscall
    /// number (a7), `rs2` its argument (a0). Syscall 1 prints `rs2`,
    /// syscall 93 halts with exit code `rs2`; anything else halts with
    /// exit code `rs1`.
    Ecall = 0x53 => "ecall",
    /// Environment break (RV32I EBREAK): halts the machine.
    Ebreak = 0x54 => "ebreak",
}

impl Opcode {
    /// Behavioural category.
    pub const fn kind(self) -> OpKind {
        use Opcode::*;
        match self {
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Fld => OpKind::Load,
            Sb | Sh | Sw | Sd | Fsd => OpKind::Store,
            Beq | Bne | Blt | Bge | Bltu | Bgeu => OpKind::Branch,
            Jal | Jalr => OpKind::Jump,
            Halt | Print | Nop | Ecall | Ebreak => OpKind::System,
            _ => OpKind::Alu,
        }
    }

    /// Functional-unit class this opcode occupies during execution.
    pub const fn fu_class(self) -> FuClass {
        use Opcode::*;
        match self {
            Mul | Div | Rem | Divu | Remu => FuClass::IntMulDiv,
            Fadd | Fsub | Fmin | Fmax | Feq | Flt | Fle | Fcvtif | Fcvtfi | Fmvif | Fmvfi => {
                FuClass::FpAlu
            }
            Fmul | Fdiv | Fsqrt => FuClass::FpMulDiv,
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Fld | Sb | Sh | Sw | Sd | Fsd => FuClass::MemPort,
            _ => FuClass::IntAlu,
        }
    }

    /// Execution latency in cycles, excluding cache access time for
    /// memory operations (the hierarchy adds that).
    ///
    /// Latencies follow SimpleScalar 2.0 `sim-outorder` defaults.
    pub const fn latency(self) -> u32 {
        use Opcode::*;
        match self {
            Mul => 3,
            Div | Rem | Divu | Remu => 20,
            Fadd | Fsub | Fmin | Fmax | Feq | Flt | Fle | Fcvtif | Fcvtfi => 2,
            Fmul => 4,
            Fdiv => 12,
            Fsqrt => 24,
            _ => 1,
        }
    }

    /// Whether the execution of this opcode is pipelined (a new
    /// instruction can begin on the unit every cycle). Dividers and
    /// square root are not.
    pub const fn pipelined(self) -> bool {
        use Opcode::*;
        !matches!(self, Div | Rem | Divu | Remu | Fdiv | Fsqrt)
    }

    /// Memory access width for loads and stores, `None` otherwise.
    pub const fn mem_width(self) -> Option<MemWidth> {
        use Opcode::*;
        match self {
            Lb | Lbu | Sb => Some(MemWidth::B1),
            Lh | Lhu | Sh => Some(MemWidth::B2),
            Lw | Lwu | Sw => Some(MemWidth::B4),
            Ld | Sd | Fld | Fsd => Some(MemWidth::B8),
            _ => None,
        }
    }

    /// Whether the opcode writes a destination register.
    pub const fn writes_rd(self) -> bool {
        use Opcode::*;
        !matches!(
            self,
            Sb | Sh
                | Sw
                | Sd
                | Fsd
                | Beq
                | Bne
                | Blt
                | Bge
                | Bltu
                | Bgeu
                | Halt
                | Print
                | Nop
                | Ecall
                | Ebreak
        )
    }

    /// Whether the opcode reads `rs1`.
    pub const fn reads_rs1(self) -> bool {
        use Opcode::*;
        !matches!(self, Li | Jal | Nop | Auipc | Ebreak)
    }

    /// Whether the opcode reads `rs2`.
    pub const fn reads_rs2(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Add | Sub
                | Mul
                | Div
                | Rem
                | Divu
                | Remu
                | And
                | Or
                | Xor
                | Sll
                | Srl
                | Sra
                | Slt
                | Sltu
                | Sb
                | Sh
                | Sw
                | Sd
                | Fsd
                | Beq
                | Bne
                | Blt
                | Bge
                | Bltu
                | Bgeu
                | Fadd
                | Fsub
                | Fmul
                | Fdiv
                | Fmin
                | Fmax
                | Feq
                | Flt
                | Fle
                | Ecall
        )
    }

    /// Whether this is a control-transfer instruction (branch or jump).
    pub const fn is_control(self) -> bool {
        matches!(self.kind(), OpKind::Branch | OpKind::Jump)
    }

    /// Whether this opcode uses the immediate field.
    pub const fn uses_imm(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Addi | Andi
                | Ori
                | Xori
                | Auipc
                | Slli
                | Srli
                | Srai
                | Slti
                | Sltiu
                | Li
                | Lih
                | Lb
                | Lbu
                | Lh
                | Lhu
                | Lw
                | Lwu
                | Ld
                | Fld
                | Sb
                | Sh
                | Sw
                | Sd
                | Fsd
                | Beq
                | Bne
                | Blt
                | Bge
                | Bltu
                | Bgeu
                | Jal
                | Jalr
        )
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn codes_are_unique_and_round_trip() {
        let mut seen = HashSet::new();
        for &op in Opcode::ALL {
            let code = op as u8;
            assert!(seen.insert(code), "duplicate code {code:#x}");
            assert_eq!(Opcode::from_code(code), Some(op));
        }
        assert_eq!(Opcode::from_code(0x00), None);
        assert_eq!(Opcode::from_code(0xFF), None);
    }

    #[test]
    fn mnemonics_are_unique_and_round_trip() {
        let mut seen = HashSet::new();
        for &op in Opcode::ALL {
            assert!(seen.insert(op.mnemonic()), "dup mnemonic {}", op.mnemonic());
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("bogus"), None);
    }

    #[test]
    fn loads_and_stores_have_widths() {
        for &op in Opcode::ALL {
            match op.kind() {
                OpKind::Load | OpKind::Store => {
                    assert!(op.mem_width().is_some(), "{op} needs a width");
                    assert_eq!(op.fu_class(), FuClass::MemPort);
                }
                _ => assert!(op.mem_width().is_none(), "{op} must not have a width"),
            }
        }
    }

    #[test]
    fn stores_and_branches_write_no_register() {
        assert!(!Opcode::Sd.writes_rd());
        assert!(!Opcode::Beq.writes_rd());
        assert!(!Opcode::Halt.writes_rd());
        assert!(Opcode::Jal.writes_rd());
        assert!(Opcode::Add.writes_rd());
        assert!(Opcode::Ld.writes_rd());
    }

    #[test]
    fn muldiv_classification() {
        assert_eq!(Opcode::Mul.fu_class(), FuClass::IntMulDiv);
        assert_eq!(Opcode::Div.fu_class(), FuClass::IntMulDiv);
        assert_eq!(Opcode::Add.fu_class(), FuClass::IntAlu);
        assert_eq!(Opcode::Beq.fu_class(), FuClass::IntAlu);
        assert_eq!(Opcode::Fmul.fu_class(), FuClass::FpMulDiv);
        assert_eq!(Opcode::Fadd.fu_class(), FuClass::FpAlu);
    }

    #[test]
    fn latency_sanity() {
        assert_eq!(Opcode::Add.latency(), 1);
        assert_eq!(Opcode::Mul.latency(), 3);
        assert_eq!(Opcode::Div.latency(), 20);
        assert!(!Opcode::Div.pipelined());
        assert!(Opcode::Mul.pipelined());
        assert!(Opcode::Add.pipelined());
    }

    #[test]
    fn lih_reads_its_own_rd_via_rs1() {
        // Lih keeps the low half of rd, so the assembler encodes rs1 = rd
        // and the opcode must report reading rs1.
        assert!(Opcode::Lih.reads_rs1());
        assert!(!Opcode::Li.reads_rs1());
    }

    #[test]
    fn rv32i_system_opcodes_classify() {
        assert_eq!(Opcode::Ecall.kind(), OpKind::System);
        assert_eq!(Opcode::Ebreak.kind(), OpKind::System);
        assert!(!Opcode::Ecall.writes_rd());
        assert!(Opcode::Ecall.reads_rs1() && Opcode::Ecall.reads_rs2());
        assert!(!Opcode::Ebreak.reads_rs1() && !Opcode::Ebreak.reads_rs2());
        assert_eq!(Opcode::Auipc.kind(), OpKind::Alu);
        assert!(Opcode::Auipc.writes_rd() && Opcode::Auipc.uses_imm());
        assert!(!Opcode::Auipc.reads_rs1() && !Opcode::Auipc.reads_rs2());
    }

    #[test]
    fn control_classification() {
        assert!(Opcode::Beq.is_control());
        assert!(Opcode::Jal.is_control());
        assert!(Opcode::Jalr.is_control());
        assert!(!Opcode::Add.is_control());
        assert_eq!(Opcode::Jal.kind(), OpKind::Jump);
        assert_eq!(Opcode::Beq.kind(), OpKind::Branch);
    }
}
