//! Programmatic code generation.
//!
//! [`ProgramBuilder`] is the API the workload kernels are written
//! against: it emits instructions with label-based control flow, manages
//! a data segment, expands the usual pseudo-instructions, and resolves
//! everything into a [`Program`] at the end.

use crate::{Instr, IsaId, Opcode, Program, Reg, DATA_BASE, TEXT_BASE};
use std::collections::BTreeMap;
use std::fmt;

/// A forward-referenceable code or data position.
///
/// Obtained from [`ProgramBuilder::label`] (code, unbound until
/// [`ProgramBuilder::bind`]) or the data-emission methods (bound
/// immediately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Error produced by [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced but never bound to a position.
    UnboundLabel(String),
    /// A resolved address or offset does not fit the 32-bit immediate.
    ImmOverflow { instr_index: usize, value: i64 },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel(n) => write!(f, "label `{n}` was never bound"),
            BuildError::ImmOverflow { instr_index, value } => {
                write!(
                    f,
                    "value {value} at instruction {instr_index} overflows the immediate field"
                )
            }
        }
    }
}

impl std::error::Error for BuildError {}

#[derive(Debug, Clone, Copy)]
enum LabelTarget {
    Unbound,
    /// Instruction index in the text segment.
    Code(usize),
    /// Byte offset in the data segment.
    Data(usize),
}

#[derive(Debug, Clone, Copy)]
enum Fixup {
    /// Patch `imm` with `target_addr - instr_addr` (branches, `jal`).
    PcRelative(Label),
    /// Patch `imm` with the label's absolute address (`la` via `li32`).
    Absolute(Label),
}

/// A label reference inside the data segment (`.word`/`.dword` with a
/// label operand), patched with the label's absolute address at build
/// time — so forward references resolve to final addresses, never to
/// stale offsets.
#[derive(Debug, Clone, Copy)]
struct DataFixup {
    /// Byte offset in the data segment where the address is written.
    offset: usize,
    /// The referenced label.
    label: Label,
    /// Field width in bytes (4 or 8).
    width: usize,
}

/// An incremental builder for [`Program`]s.
///
/// # Example
///
/// ```
/// use reese_isa::{abi::*, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new();
/// let loop_top = b.label("loop");
/// b.li(T0, 10);
/// b.bind(loop_top);
/// b.addi(T0, T0, -1);
/// b.bnez(T0, loop_top);
/// b.halt();
/// let prog = b.build()?;
/// assert_eq!(prog.len(), 4);
/// # Ok::<(), reese_isa::BuildError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    text: Vec<Instr>,
    fixups: Vec<(usize, Fixup)>,
    data_fixups: Vec<DataFixup>,
    labels: Vec<LabelTarget>,
    label_names: Vec<String>,
    named: BTreeMap<String, Label>,
    data: Vec<u8>,
    entry_label: Option<Label>,
    isa: IsaId,
}

impl ProgramBuilder {
    /// Creates an empty builder targeting the native ISA.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Creates an empty builder targeting a specific ISA. Label
    /// addresses and pc-relative fix-ups use that ISA's instruction
    /// size, and the built [`Program`] is stamped with it.
    pub fn for_isa(isa: IsaId) -> ProgramBuilder {
        ProgramBuilder {
            isa,
            ..ProgramBuilder::default()
        }
    }

    /// The ISA this builder targets.
    pub fn isa(&self) -> IsaId {
        self.isa
    }

    fn inst_size(&self) -> u64 {
        self.isa.inst_size()
    }

    // -- labels ----------------------------------------------------------

    /// Declares (or retrieves) a named label, initially unbound.
    pub fn label(&mut self, name: &str) -> Label {
        if let Some(&l) = self.named.get(name) {
            return l;
        }
        let l = Label(self.labels.len());
        self.labels.push(LabelTarget::Unbound);
        self.label_names.push(name.to_string());
        self.named.insert(name.to_string(), l);
        l
    }

    /// Binds a label to the current end of the text segment.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        match self.labels[label.0] {
            LabelTarget::Unbound => self.labels[label.0] = LabelTarget::Code(self.text.len()),
            _ => panic!("label `{}` bound twice", self.label_names[label.0]),
        }
        self
    }

    /// Declares and immediately binds a code label.
    pub fn here(&mut self, name: &str) -> Label {
        let l = self.label(name);
        self.bind(l);
        l
    }

    /// Whether a label has been bound to a position yet.
    pub fn is_bound(&self, label: Label) -> bool {
        !matches!(self.labels[label.0], LabelTarget::Unbound)
    }

    /// Marks the program entry point (defaults to the first instruction).
    pub fn entry(&mut self, label: Label) -> &mut Self {
        self.entry_label = Some(label);
        self
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    // -- raw emission ------------------------------------------------------

    /// Emits a raw instruction.
    pub fn emit(&mut self, i: Instr) -> &mut Self {
        self.text.push(i);
        self
    }

    /// Emits a raw pc-relative control-flow instruction (branch or
    /// `jal` form) whose immediate is resolved from `target` at build
    /// time. This is the escape hatch for program *transforms* that
    /// rewrite existing instruction streams: the original branch
    /// offsets are invalid after instructions are inserted, so the
    /// rewriter re-emits each control transfer against a label bound
    /// where the original target landed.
    pub fn emit_branch(&mut self, i: Instr, target: Label) -> &mut Self {
        self.emit_fixup(i, Fixup::PcRelative(target))
    }

    fn emit_fixup(&mut self, i: Instr, fixup: Fixup) -> &mut Self {
        self.fixups.push((self.text.len(), fixup));
        self.text.push(i);
        self
    }

    // -- data segment --------------------------------------------------------

    /// Declares a label bound to the current end of the data segment.
    pub fn data_label(&mut self, name: &str) -> Label {
        let l = self.label(name);
        self.bind_data(l);
        l
    }

    /// Binds an existing label to the current end of the data segment.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind_data(&mut self, label: Label) -> &mut Self {
        match self.labels[label.0] {
            LabelTarget::Unbound => self.labels[label.0] = LabelTarget::Data(self.data.len()),
            _ => panic!("label `{}` bound twice", self.label_names[label.0]),
        }
        self
    }

    /// Appends one byte of initialised data.
    pub fn byte(&mut self, v: u8) -> &mut Self {
        self.data.push(v);
        self
    }

    /// Appends raw bytes of initialised data.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.data.extend_from_slice(v);
        self
    }

    /// Appends a little-endian 32-bit word.
    pub fn word(&mut self, v: u32) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Appends a little-endian 64-bit word.
    pub fn dword(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Appends a 32-bit word holding a label's address, resolved at
    /// build time (so forward references get the final address).
    pub fn word_label(&mut self, label: Label) -> &mut Self {
        self.data_fixups.push(DataFixup {
            offset: self.data.len(),
            label,
            width: 4,
        });
        self.word(0)
    }

    /// Appends a 64-bit word holding a label's address, resolved at
    /// build time (so forward references get the final address).
    pub fn dword_label(&mut self, label: Label) -> &mut Self {
        self.data_fixups.push(DataFixup {
            offset: self.data.len(),
            label,
            width: 8,
        });
        self.dword(0)
    }

    /// Appends `n` zero bytes.
    pub fn space(&mut self, n: usize) -> &mut Self {
        self.data.resize(self.data.len() + n, 0);
        self
    }

    /// Pads the data segment to an `n`-byte boundary.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn align(&mut self, n: usize) -> &mut Self {
        assert!(n.is_power_of_two(), "alignment must be a power of two");
        while !self.data.len().is_multiple_of(n) {
            self.data.push(0);
        }
        self
    }

    /// Appends a NUL-terminated string.
    pub fn asciz(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes());
        self.byte(0)
    }

    // -- integer ALU ---------------------------------------------------------

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Add, rd, rs1, rs2))
    }
    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Sub, rd, rs1, rs2))
    }
    /// `rd = rs1 * rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Mul, rd, rs1, rs2))
    }
    /// `rd = rs1 / rs2` (signed)
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Div, rd, rs1, rs2))
    }
    /// `rd = rs1 % rs2` (signed)
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Rem, rd, rs1, rs2))
    }
    /// `rd = rs1 / rs2` (unsigned)
    pub fn divu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Divu, rd, rs1, rs2))
    }
    /// `rd = rs1 % rs2` (unsigned)
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Remu, rd, rs1, rs2))
    }
    /// `rd = rs1 & rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::And, rd, rs1, rs2))
    }
    /// `rd = rs1 | rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Or, rd, rs1, rs2))
    }
    /// `rd = rs1 ^ rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Xor, rd, rs1, rs2))
    }
    /// `rd = rs1 << rs2`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Sll, rd, rs1, rs2))
    }
    /// `rd = rs1 >> rs2` (logical)
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Srl, rd, rs1, rs2))
    }
    /// `rd = rs1 >> rs2` (arithmetic)
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Sra, rd, rs1, rs2))
    }
    /// `rd = (rs1 < rs2) ? 1 : 0` (signed)
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Slt, rd, rs1, rs2))
    }
    /// `rd = (rs1 < rs2) ? 1 : 0` (unsigned)
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Sltu, rd, rs1, rs2))
    }

    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Instr::rri(Opcode::Addi, rd, rs1, imm))
    }
    /// `rd = rs1 & imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Instr::rri(Opcode::Andi, rd, rs1, imm))
    }
    /// `rd = rs1 | imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Instr::rri(Opcode::Ori, rd, rs1, imm))
    }
    /// `rd = rs1 ^ imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Instr::rri(Opcode::Xori, rd, rs1, imm))
    }
    /// `rd = rs1 << imm`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Instr::rri(Opcode::Slli, rd, rs1, imm))
    }
    /// `rd = rs1 >> imm` (logical)
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Instr::rri(Opcode::Srli, rd, rs1, imm))
    }
    /// `rd = rs1 >> imm` (arithmetic)
    pub fn srai(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Instr::rri(Opcode::Srai, rd, rs1, imm))
    }
    /// `rd = (rs1 < imm) ? 1 : 0` (signed)
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Instr::rri(Opcode::Slti, rd, rs1, imm))
    }

    /// Loads any 64-bit constant (one or two instructions).
    pub fn li(&mut self, rd: Reg, value: i64) -> &mut Self {
        if i32::try_from(value).is_ok() {
            return self.emit(Instr::rri(Opcode::Li, rd, Reg::ZERO, value));
        }
        let lo = value as u32 as i32 as i64; // sign-extended low half
        let hi = (value as u64 >> 32) as u32 as i64;
        self.emit(Instr::rri(Opcode::Li, rd, Reg::ZERO, lo));
        // `lih` keeps rd's low half and overwrites the high half; rs1 is
        // canonicalised to rd so dependence tracking sees the read.
        self.emit(Instr {
            op: Opcode::Lih,
            rd,
            rs1: rd,
            rs2: Reg::ZERO,
            imm: hi,
        })
    }

    /// Loads the address of a label (`la`).
    pub fn la(&mut self, rd: Reg, label: Label) -> &mut Self {
        self.emit_fixup(
            Instr::rri(Opcode::Li, rd, Reg::ZERO, 0),
            Fixup::Absolute(label),
        )
    }

    // -- memory ---------------------------------------------------------------

    /// `rd = sext(mem8[base + off])`
    pub fn lb(&mut self, rd: Reg, off: i64, base: Reg) -> &mut Self {
        self.emit(Instr::load(Opcode::Lb, rd, base, off))
    }
    /// `rd = zext(mem8[base + off])`
    pub fn lbu(&mut self, rd: Reg, off: i64, base: Reg) -> &mut Self {
        self.emit(Instr::load(Opcode::Lbu, rd, base, off))
    }
    /// `rd = sext(mem16[base + off])`
    pub fn lh(&mut self, rd: Reg, off: i64, base: Reg) -> &mut Self {
        self.emit(Instr::load(Opcode::Lh, rd, base, off))
    }
    /// `rd = zext(mem16[base + off])`
    pub fn lhu(&mut self, rd: Reg, off: i64, base: Reg) -> &mut Self {
        self.emit(Instr::load(Opcode::Lhu, rd, base, off))
    }
    /// `rd = sext(mem32[base + off])`
    pub fn lw(&mut self, rd: Reg, off: i64, base: Reg) -> &mut Self {
        self.emit(Instr::load(Opcode::Lw, rd, base, off))
    }
    /// `rd = zext(mem32[base + off])`
    pub fn lwu(&mut self, rd: Reg, off: i64, base: Reg) -> &mut Self {
        self.emit(Instr::load(Opcode::Lwu, rd, base, off))
    }
    /// `rd = mem64[base + off]`
    pub fn ld(&mut self, rd: Reg, off: i64, base: Reg) -> &mut Self {
        self.emit(Instr::load(Opcode::Ld, rd, base, off))
    }
    /// `fd = mem64[base + off]`
    pub fn fld(&mut self, fd: Reg, off: i64, base: Reg) -> &mut Self {
        self.emit(Instr::load(Opcode::Fld, fd, base, off))
    }
    /// `mem8[base + off] = src`
    pub fn sb(&mut self, src: Reg, off: i64, base: Reg) -> &mut Self {
        self.emit(Instr::store(Opcode::Sb, src, base, off))
    }
    /// `mem16[base + off] = src`
    pub fn sh(&mut self, src: Reg, off: i64, base: Reg) -> &mut Self {
        self.emit(Instr::store(Opcode::Sh, src, base, off))
    }
    /// `mem32[base + off] = src`
    pub fn sw(&mut self, src: Reg, off: i64, base: Reg) -> &mut Self {
        self.emit(Instr::store(Opcode::Sw, src, base, off))
    }
    /// `mem64[base + off] = src`
    pub fn sd(&mut self, src: Reg, off: i64, base: Reg) -> &mut Self {
        self.emit(Instr::store(Opcode::Sd, src, base, off))
    }
    /// `mem64[base + off] = fsrc`
    pub fn fsd(&mut self, fsrc: Reg, off: i64, base: Reg) -> &mut Self {
        self.emit(Instr::store(Opcode::Fsd, fsrc, base, off))
    }

    // -- control flow -----------------------------------------------------------

    /// Branch to `target` if `rs1 == rs2`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.emit_fixup(
            Instr::branch(Opcode::Beq, rs1, rs2, 0),
            Fixup::PcRelative(target),
        )
    }
    /// Branch to `target` if `rs1 != rs2`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.emit_fixup(
            Instr::branch(Opcode::Bne, rs1, rs2, 0),
            Fixup::PcRelative(target),
        )
    }
    /// Branch to `target` if `rs1 < rs2` (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.emit_fixup(
            Instr::branch(Opcode::Blt, rs1, rs2, 0),
            Fixup::PcRelative(target),
        )
    }
    /// Branch to `target` if `rs1 >= rs2` (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.emit_fixup(
            Instr::branch(Opcode::Bge, rs1, rs2, 0),
            Fixup::PcRelative(target),
        )
    }
    /// Branch to `target` if `rs1 < rs2` (unsigned).
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.emit_fixup(
            Instr::branch(Opcode::Bltu, rs1, rs2, 0),
            Fixup::PcRelative(target),
        )
    }
    /// Branch to `target` if `rs1 >= rs2` (unsigned).
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.emit_fixup(
            Instr::branch(Opcode::Bgeu, rs1, rs2, 0),
            Fixup::PcRelative(target),
        )
    }
    /// `rd = pc + 8; pc = target`
    pub fn jal(&mut self, rd: Reg, target: Label) -> &mut Self {
        self.emit_fixup(
            Instr::rri(Opcode::Jal, rd, Reg::ZERO, 0),
            Fixup::PcRelative(target),
        )
    }
    /// `rd = pc + 8; pc = rs1 + imm`
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Instr::rri(Opcode::Jalr, rd, rs1, imm))
    }

    // -- floating point ------------------------------------------------------------

    /// `fd = fs1 + fs2`
    pub fn fadd(&mut self, fd: Reg, fs1: Reg, fs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Fadd, fd, fs1, fs2))
    }
    /// `fd = fs1 - fs2`
    pub fn fsub(&mut self, fd: Reg, fs1: Reg, fs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Fsub, fd, fs1, fs2))
    }
    /// `fd = fs1 * fs2`
    pub fn fmul(&mut self, fd: Reg, fs1: Reg, fs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Fmul, fd, fs1, fs2))
    }
    /// `fd = fs1 / fs2`
    pub fn fdiv(&mut self, fd: Reg, fs1: Reg, fs2: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Fdiv, fd, fs1, fs2))
    }
    /// `fd = (f64) rs1`
    pub fn fcvtif(&mut self, fd: Reg, rs1: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Fcvtif, fd, rs1, Reg::ZERO))
    }
    /// `rd = (i64) fs1`
    pub fn fcvtfi(&mut self, rd: Reg, fs1: Reg) -> &mut Self {
        self.emit(Instr::rrr(Opcode::Fcvtfi, rd, fs1, Reg::ZERO))
    }

    // -- system ---------------------------------------------------------------------

    /// Stops the machine; the exit code is read from `x10` (`a0`).
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr {
            op: Opcode::Halt,
            rs1: Reg::x(10),
            ..Instr::nop()
        })
    }

    /// Appends `rs1` to the machine output log.
    pub fn print(&mut self, rs1: Reg) -> &mut Self {
        self.emit(Instr {
            op: Opcode::Print,
            rs1,
            ..Instr::nop()
        })
    }

    /// Emits a no-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::nop())
    }

    // -- pseudo-instructions -----------------------------------------------------------

    /// `rd = rs` (copy).
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.addi(rd, rs, 0)
    }
    /// `rd = -rs`
    pub fn neg(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.sub(rd, Reg::ZERO, rs)
    }
    /// `rd = !rs` (bitwise not)
    pub fn not(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.xori(rd, rs, -1)
    }
    /// `rd = (rs == 0) ? 1 : 0`
    pub fn seqz(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::rri(Opcode::Sltiu, rd, rs, 1))
    }
    /// `rd = (rs != 0) ? 1 : 0`
    pub fn snez(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.sltu(rd, Reg::ZERO, rs)
    }
    /// Branch if `rs == 0`.
    pub fn beqz(&mut self, rs: Reg, target: Label) -> &mut Self {
        self.beq(rs, Reg::ZERO, target)
    }
    /// Branch if `rs != 0`.
    pub fn bnez(&mut self, rs: Reg, target: Label) -> &mut Self {
        self.bne(rs, Reg::ZERO, target)
    }
    /// Branch if `rs < 0`.
    pub fn bltz(&mut self, rs: Reg, target: Label) -> &mut Self {
        self.blt(rs, Reg::ZERO, target)
    }
    /// Branch if `rs >= 0`.
    pub fn bgez(&mut self, rs: Reg, target: Label) -> &mut Self {
        self.bge(rs, Reg::ZERO, target)
    }
    /// Branch if `rs1 <= rs2` (signed).
    pub fn ble(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.bge(rs2, rs1, target)
    }
    /// Branch if `rs1 > rs2` (signed).
    pub fn bgt(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.blt(rs2, rs1, target)
    }
    /// Unconditional jump.
    pub fn j(&mut self, target: Label) -> &mut Self {
        self.jal(Reg::ZERO, target)
    }
    /// Call a subroutine (link in `ra`).
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.jal(Reg::RA, target)
    }
    /// Return from a subroutine (`jalr x0, 0(ra)`).
    pub fn ret(&mut self) -> &mut Self {
        self.jalr(Reg::ZERO, Reg::RA, 0)
    }

    // -- finalisation -------------------------------------------------------------------

    fn label_address(&self, label: Label) -> Result<u64, BuildError> {
        match self.labels[label.0] {
            LabelTarget::Unbound => {
                Err(BuildError::UnboundLabel(self.label_names[label.0].clone()))
            }
            LabelTarget::Code(idx) => Ok(TEXT_BASE + idx as u64 * self.inst_size()),
            LabelTarget::Data(off) => Ok(DATA_BASE + off as u64),
        }
    }

    /// Resolves all fix-ups and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnboundLabel`] if any referenced label was
    /// never bound, or [`BuildError::ImmOverflow`] if a resolved address
    /// or branch offset exceeds the 32-bit immediate field.
    pub fn build(mut self) -> Result<Program, BuildError> {
        for &(idx, fixup) in &self.fixups {
            let value = match fixup {
                Fixup::PcRelative(l) => {
                    let target = self.label_address(l)?;
                    let pc = TEXT_BASE + idx as u64 * self.inst_size();
                    target as i64 - pc as i64
                }
                Fixup::Absolute(l) => self.label_address(l)? as i64,
            };
            if i32::try_from(value).is_err() {
                return Err(BuildError::ImmOverflow {
                    instr_index: idx,
                    value,
                });
            }
            self.text[idx].imm = value;
        }
        for &DataFixup {
            offset,
            label,
            width,
        } in &self.data_fixups
        {
            let addr = self.label_address(label)?;
            if width == 4 && u32::try_from(addr).is_err() {
                return Err(BuildError::ImmOverflow {
                    instr_index: 0,
                    value: addr as i64,
                });
            }
            self.data[offset..offset + width].copy_from_slice(&addr.to_le_bytes()[..width]);
        }
        let entry = match self.entry_label {
            Some(l) => self.label_address(l)?,
            None => TEXT_BASE,
        };
        let mut symbols = BTreeMap::new();
        for (name, &label) in &self.named {
            if let Ok(addr) = self.label_address(label) {
                symbols.insert(name.clone(), addr);
            }
        }
        Ok(
            Program::new(self.text, TEXT_BASE, self.data, DATA_BASE, entry, symbols)
                .with_isa(self.isa),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::*;

    #[test]
    fn backward_branch_offset() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 3);
        let top = b.here("top");
        b.addi(T0, T0, -1);
        b.bnez(T0, top);
        b.halt();
        let p = b.build().unwrap();
        // bnez is instruction 2 (addr 0x1010); target instruction 1 (0x1008).
        assert_eq!(p.text()[2].imm, -8);
    }

    #[test]
    fn forward_branch_offset() {
        let mut b = ProgramBuilder::new();
        let done = b.label("done");
        b.beqz(T0, done); // instr 0, addr 0x1000
        b.nop(); // instr 1
        b.bind(done);
        b.halt(); // instr 2, addr 0x1010
        let p = b.build().unwrap();
        assert_eq!(p.text()[0].imm, 16);
    }

    #[test]
    fn unbound_label_is_error() {
        let mut b = ProgramBuilder::new();
        let nowhere = b.label("nowhere");
        b.j(nowhere);
        assert_eq!(b.build(), Err(BuildError::UnboundLabel("nowhere".into())));
    }

    #[test]
    fn li_small_is_one_instruction() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 42);
        assert_eq!(b.len(), 1);
        b.li(T0, -1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn li_large_is_two_instructions() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 0x1234_5678_9ABC_DEF0);
        assert_eq!(b.len(), 2);
        assert_eq!(b.text[0].op, Opcode::Li);
        assert_eq!(b.text[1].op, Opcode::Lih);
        assert_eq!(b.text[1].rs1, T0, "lih must read its own rd");
    }

    #[test]
    fn la_resolves_data_labels() {
        let mut b = ProgramBuilder::new();
        b.space(16);
        let arr = b.data_label("arr");
        b.dword(7);
        b.la(A0, arr);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.text()[0].imm, (DATA_BASE + 16) as i64);
        assert_eq!(p.symbol("arr"), Some(DATA_BASE + 16));
    }

    #[test]
    fn la_resolves_code_labels() {
        let mut b = ProgramBuilder::new();
        let f = b.label("f");
        b.la(A0, f);
        b.halt();
        b.bind(f);
        b.ret();
        let p = b.build().unwrap();
        assert_eq!(p.text()[0].imm, (TEXT_BASE + 16) as i64);
    }

    #[test]
    fn entry_defaults_to_text_base() {
        let mut b = ProgramBuilder::new();
        b.halt();
        assert_eq!(b.build().unwrap().entry(), TEXT_BASE);
    }

    #[test]
    fn explicit_entry() {
        let mut b = ProgramBuilder::new();
        b.nop();
        let main = b.here("main");
        b.halt();
        b.entry(main);
        assert_eq!(b.build().unwrap().entry(), TEXT_BASE + 8);
    }

    #[test]
    fn align_and_data_layout() {
        let mut b = ProgramBuilder::new();
        b.byte(1);
        b.align(8);
        let l = b.data_label("x");
        b.dword(5);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.symbol("x"), Some(DATA_BASE + 8));
        assert_eq!(p.data().len(), 16);
        let _ = l;
    }

    #[test]
    fn asciz_terminates() {
        let mut b = ProgramBuilder::new();
        b.asciz("hi");
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.data(), &[b'h', b'i', 0]);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.here("l");
        b.bind(l);
    }

    #[test]
    fn label_is_idempotent_by_name() {
        let mut b = ProgramBuilder::new();
        let l1 = b.label("same");
        let l2 = b.label("same");
        assert_eq!(l1, l2);
    }

    #[test]
    fn rv32i_builder_uses_four_byte_pc_math() {
        let mut b = ProgramBuilder::for_isa(IsaId::Rv32i);
        b.li(T0, 3);
        let top = b.here("top");
        b.addi(T0, T0, -1);
        b.bnez(T0, top);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.isa(), IsaId::Rv32i);
        // bnez is instruction 2 (addr 0x1008); target instruction 1 (0x1004).
        assert_eq!(p.text()[2].imm, -4);
        assert_eq!(p.symbol("top"), Some(TEXT_BASE + 4));
    }

    #[test]
    fn data_label_fixups_resolve_forward_references() {
        let mut b = ProgramBuilder::new();
        let table = b.data_label("table");
        let fwd = b.label("fwd"); // bound later, after the table
        b.dword_label(fwd);
        b.word_label(table);
        b.halt();
        b.space(4);
        b.bind_data(fwd);
        b.byte(9);
        let p = b.build().unwrap();
        let fwd_addr = DATA_BASE + 8 + 4 + 4; // dword + word + space
        assert_eq!(
            u64::from_le_bytes(p.data()[0..8].try_into().unwrap()),
            fwd_addr
        );
        assert_eq!(
            u64::from(u32::from_le_bytes(p.data()[8..12].try_into().unwrap())),
            DATA_BASE
        );
    }

    #[test]
    fn unbound_data_fixup_is_error() {
        let mut b = ProgramBuilder::new();
        let nowhere = b.label("nowhere");
        b.word_label(nowhere);
        b.halt();
        assert_eq!(b.build(), Err(BuildError::UnboundLabel("nowhere".into())));
    }

    #[test]
    fn pseudo_ops_expand_correctly() {
        let mut b = ProgramBuilder::new();
        b.mv(T0, T1);
        b.neg(T0, T1);
        b.not(T0, T1);
        b.seqz(T0, T1);
        b.snez(T0, T1);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.text()[0].op, Opcode::Addi);
        assert_eq!(p.text()[1].op, Opcode::Sub);
        assert_eq!(p.text()[2].op, Opcode::Xori);
        assert_eq!(p.text()[3].op, Opcode::Sltiu);
        assert_eq!(p.text()[4].op, Opcode::Sltu);
    }
}
