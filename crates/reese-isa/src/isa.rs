//! The ISA registry: the single source of truth for instruction-set
//! names, wire ids, and per-ISA frontends.
//!
//! Mirrors the detection-scheme registry in `reese-ckpt`: every
//! consumer — CLI parsing and help text, checkpoint wire frames, the
//! program loader, the workload ports — derives its accepted set from
//! [`IsaId::ALL`], so registering a new frontend here makes it appear
//! everywhere automatically.
//!
//! The execution side of an ISA (what `step` does with a decoded
//! instruction) lives in `reese-cpu`, keyed by the same [`IsaId`]; this
//! module owns everything the simulators need *before* execution:
//! decode, encode, disassembly, assembly, and flat-binary loading.

use crate::{AsmError, DecodeError, EncodeError, Instr, Program};
use std::fmt;

/// An instruction-set architecture the toolchain and simulators speak.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum IsaId {
    /// The in-house 64-bit mini RISC ISA (8-byte instruction words).
    #[default]
    Native,
    /// RISC-V RV32I base integer ISA plus the M-extension integer
    /// multiply/divide group (4-byte instruction words).
    Rv32i,
}

impl IsaId {
    /// All registered ISAs, in registry order.
    pub const ALL: [IsaId; 2] = [IsaId::Native, IsaId::Rv32i];

    /// Stable lower-case name for CLI and JSON.
    pub fn name(self) -> &'static str {
        match self {
            IsaId::Native => "native",
            IsaId::Rv32i => "rv32i",
        }
    }

    /// One-line description for help text and reports.
    pub fn description(self) -> &'static str {
        match self {
            IsaId::Native => "in-house 64-bit mini RISC ISA (8-byte words)",
            IsaId::Rv32i => "RISC-V RV32I + M integer base (4-byte words)",
        }
    }

    /// Parses an [`IsaId::name`].
    pub fn parse(s: &str) -> Option<IsaId> {
        IsaId::ALL.into_iter().find(|k| k.name() == s)
    }

    /// The accepted-name list for CLI error messages, e.g.
    /// `native|rv32i`.
    pub fn expected() -> String {
        IsaId::ALL.map(IsaId::name).join("|")
    }

    /// Stable wire id for the checkpoint format.
    pub fn id(self) -> u8 {
        match self {
            IsaId::Native => 0,
            IsaId::Rv32i => 1,
        }
    }

    /// Inverse of [`IsaId::id`].
    pub fn from_id(id: u8) -> Option<IsaId> {
        IsaId::ALL.into_iter().find(|k| k.id() == id)
    }

    /// Size of one encoded instruction in bytes. Every registered ISA
    /// is fixed-width, so this fully determines pc arithmetic.
    pub const fn inst_size(self) -> u64 {
        match self {
            IsaId::Native => 8,
            IsaId::Rv32i => 4,
        }
    }

    /// Architectural register width in bits. Both ISAs share the
    /// 64-entry unified register file; RV32I values are stored
    /// sign-extended to 64 bits, which preserves signed *and* unsigned
    /// 32-bit comparison order.
    pub const fn xlen(self) -> u32 {
        match self {
            IsaId::Native => 64,
            IsaId::Rv32i => 32,
        }
    }

    /// The static frontend (decode/encode/disassemble/assemble) for
    /// this ISA.
    pub fn frontend(self) -> &'static dyn Isa {
        match self {
            IsaId::Native => &NativeIsa,
            IsaId::Rv32i => &Rv32iIsa,
        }
    }
}

impl fmt::Display for IsaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The per-ISA toolchain surface: everything needed to turn bytes or
/// source text into a [`Program`] and back.
///
/// Execution semantics (register-file shape, trap behaviour) are keyed
/// off [`Isa::id`] in `reese-cpu`; the trait itself stays object-safe
/// so loaders can dispatch on a runtime-selected ISA.
pub trait Isa: Sync {
    /// Which registry entry this frontend implements.
    fn id(&self) -> IsaId;

    /// Size of one encoded instruction in bytes.
    fn inst_size(&self) -> u64 {
        self.id().inst_size()
    }

    /// Decodes a flat little-endian text image into instructions.
    ///
    /// # Errors
    ///
    /// Returns the word index of the first malformed instruction.
    fn decode_text(&self, bytes: &[u8]) -> Result<Vec<Instr>, (usize, DecodeError)>;

    /// Encodes a text segment into its binary image.
    ///
    /// # Errors
    ///
    /// Returns the instruction index of the first instruction this ISA
    /// cannot represent.
    fn encode_text(&self, text: &[Instr]) -> Result<Vec<u8>, (usize, EncodeError)>;

    /// Disassembles a text segment with addresses, one per line.
    fn disassemble_text(&self, text: &[Instr], base: u64) -> String;

    /// Assembles source text into a program stamped with this ISA.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] with the offending line and column.
    fn assemble(&self, source: &str) -> Result<Program, AsmError>;

    /// Loads a flat binary (a bare text image at the default bases)
    /// into a program stamped with this ISA.
    ///
    /// # Errors
    ///
    /// Returns the word index of the first malformed instruction.
    fn load_flat(&self, bytes: &[u8]) -> Result<Program, (usize, DecodeError)>;
}

/// Frontend for the in-house 64-bit mini ISA.
pub struct NativeIsa;

impl Isa for NativeIsa {
    fn id(&self) -> IsaId {
        IsaId::Native
    }

    fn decode_text(&self, bytes: &[u8]) -> Result<Vec<Instr>, (usize, DecodeError)> {
        crate::decode_text(bytes)
    }

    fn encode_text(&self, text: &[Instr]) -> Result<Vec<u8>, (usize, EncodeError)> {
        crate::encode_text(text)
    }

    fn disassemble_text(&self, text: &[Instr], base: u64) -> String {
        crate::disasm::disassemble_text(text, base)
    }

    fn assemble(&self, source: &str) -> Result<Program, AsmError> {
        crate::assemble(source)
    }

    fn load_flat(&self, bytes: &[u8]) -> Result<Program, (usize, DecodeError)> {
        Ok(Program::from_text(self.decode_text(bytes)?))
    }
}

/// Frontend for the RV32I + M base integer ISA.
pub struct Rv32iIsa;

impl Isa for Rv32iIsa {
    fn id(&self) -> IsaId {
        IsaId::Rv32i
    }

    fn decode_text(&self, bytes: &[u8]) -> Result<Vec<Instr>, (usize, DecodeError)> {
        crate::rv32i::decode_text(bytes)
    }

    fn encode_text(&self, text: &[Instr]) -> Result<Vec<u8>, (usize, EncodeError)> {
        crate::rv32i::encode_text(text)
    }

    fn disassemble_text(&self, text: &[Instr], base: u64) -> String {
        crate::rv32i::disassemble_text(text, base)
    }

    fn assemble(&self, source: &str) -> Result<Program, AsmError> {
        crate::rv32i::assemble(source)
    }

    fn load_flat(&self, bytes: &[u8]) -> Result<Program, (usize, DecodeError)> {
        Ok(Program::from_text(self.decode_text(bytes)?).with_isa(IsaId::Rv32i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for isa in IsaId::ALL {
            assert_eq!(IsaId::parse(isa.name()), Some(isa));
            assert_eq!(IsaId::from_id(isa.id()), Some(isa));
            assert_eq!(isa.frontend().id(), isa);
        }
        assert_eq!(IsaId::parse("pisa"), None);
        assert_eq!(IsaId::from_id(IsaId::ALL.len() as u8), None);
    }

    #[test]
    fn ids_are_dense_and_stable() {
        for (i, isa) in IsaId::ALL.into_iter().enumerate() {
            assert_eq!(isa.id() as usize, i, "wire ids follow registry order");
        }
    }

    #[test]
    fn expected_list_names_every_isa() {
        assert_eq!(IsaId::expected(), "native|rv32i");
    }

    #[test]
    fn geometry() {
        assert_eq!(IsaId::Native.inst_size(), 8);
        assert_eq!(IsaId::Rv32i.inst_size(), 4);
        assert_eq!(IsaId::Native.xlen(), 64);
        assert_eq!(IsaId::Rv32i.xlen(), 32);
        assert_eq!(IsaId::default(), IsaId::Native);
    }
}
