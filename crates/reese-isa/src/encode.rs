//! Binary instruction encoding.
//!
//! Each instruction is one little-endian 64-bit word:
//!
//! ```text
//! bits  0..8    opcode byte (stable discriminant from [`Opcode`])
//! bits  8..16   rd   (unified register index, 0..64)
//! bits 16..24   rs1
//! bits 24..32   rs2
//! bits 32..64   imm  (two's-complement i32)
//! ```
//!
//! The fixed-width format keeps fetch and decode trivial while still
//! giving the simulators a real binary representation to load, and it
//! round-trips exactly: `decode(encode(i)) == i.canonical()`.

use crate::{Instr, Opcode, Reg};
use std::fmt;

/// Error produced when decoding a malformed instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte does not name any instruction.
    BadOpcode(u8),
    /// A register field is out of the 64-entry architectural space.
    BadRegister(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(b) => write!(f, "unknown opcode byte {b:#04x}"),
            DecodeError::BadRegister(r) => write!(f, "register index {r} out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Error produced when encoding an instruction the target encoding
/// cannot represent (immediate out of field range, or — for RV32I — an
/// opcode with no RISC-V encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeError {
    /// The instruction's immediate, for the error message.
    pub imm: i64,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instruction not representable (immediate {} out of field range, or no encoding)",
            self.imm
        )
    }
}

impl std::error::Error for EncodeError {}

/// Encodes an instruction into its 64-bit word.
///
/// Unused fields are canonicalised to zero first, so semantically equal
/// instructions encode identically.
///
/// # Errors
///
/// Returns [`EncodeError`] if the immediate does not fit in `i32`.
pub fn encode(instr: &Instr) -> Result<u64, EncodeError> {
    let i = instr.canonical();
    let imm32 = i32::try_from(i.imm).map_err(|_| EncodeError { imm: i.imm })?;
    Ok(u64::from(i.op as u8)
        | (u64::from(i.rd.raw()) << 8)
        | (u64::from(i.rs1.raw()) << 16)
        | (u64::from(i.rs2.raw()) << 24)
        | ((imm32 as u32 as u64) << 32))
}

/// Decodes a 64-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] on an unknown opcode byte or out-of-range
/// register index.
pub fn decode(word: u64) -> Result<Instr, DecodeError> {
    let op_byte = (word & 0xFF) as u8;
    let op = Opcode::from_code(op_byte).ok_or(DecodeError::BadOpcode(op_byte))?;
    let reg = |b: u8| Reg::from_raw(b).ok_or(DecodeError::BadRegister(b));
    let rd = reg((word >> 8) as u8)?;
    let rs1 = reg((word >> 16) as u8)?;
    let rs2 = reg((word >> 24) as u8)?;
    let imm = (word >> 32) as u32 as i32 as i64;
    Ok(Instr {
        op,
        rd,
        rs1,
        rs2,
        imm,
    }
    .canonical())
}

/// Encodes a full text segment into bytes (little-endian words).
///
/// # Errors
///
/// Returns the index of the offending instruction alongside the
/// [`EncodeError`].
pub fn encode_text(text: &[Instr]) -> Result<Vec<u8>, (usize, EncodeError)> {
    let mut out = Vec::with_capacity(text.len() * Instr::SIZE as usize);
    for (idx, i) in text.iter().enumerate() {
        let w = encode(i).map_err(|e| (idx, e))?;
        out.extend_from_slice(&w.to_le_bytes());
    }
    Ok(out)
}

/// Decodes a byte slice produced by [`encode_text`].
///
/// # Errors
///
/// Returns the word index of the first malformed instruction. Trailing
/// bytes that do not fill a word are an error at index `len / 8`.
pub fn decode_text(bytes: &[u8]) -> Result<Vec<Instr>, (usize, DecodeError)> {
    if !bytes.len().is_multiple_of(Instr::SIZE as usize) {
        return Err((
            bytes.len() / Instr::SIZE as usize,
            DecodeError::BadOpcode(0),
        ));
    }
    bytes
        .chunks_exact(Instr::SIZE as usize)
        .enumerate()
        .map(|(idx, chunk)| {
            let w = u64::from_le_bytes(chunk.try_into().expect("chunks_exact"));
            decode(w).map_err(|e| (idx, e))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple() {
        let i = Instr::rrr(Opcode::Add, Reg::x(1), Reg::x(2), Reg::x(3));
        let w = encode(&i).unwrap();
        assert_eq!(decode(w).unwrap(), i);
    }

    #[test]
    fn round_trip_negative_imm() {
        let i = Instr::rri(Opcode::Addi, Reg::x(5), Reg::x(5), -123456);
        assert_eq!(decode(encode(&i).unwrap()).unwrap(), i);
    }

    #[test]
    fn round_trip_extreme_imm() {
        for imm in [i32::MIN as i64, i32::MAX as i64, 0, -1] {
            let i = Instr::rri(Opcode::Li, Reg::x(9), Reg::ZERO, imm);
            assert_eq!(decode(encode(&i).unwrap()).unwrap().imm, imm);
        }
    }

    #[test]
    fn imm_overflow_rejected() {
        let i = Instr::rri(Opcode::Addi, Reg::x(1), Reg::x(1), 1 << 40);
        assert_eq!(encode(&i), Err(EncodeError { imm: 1 << 40 }));
        let i = Instr::rri(Opcode::Addi, Reg::x(1), Reg::x(1), i64::from(i32::MIN) - 1);
        assert!(encode(&i).is_err());
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(decode(0x00), Err(DecodeError::BadOpcode(0)));
        assert_eq!(decode(0xFF), Err(DecodeError::BadOpcode(0xFF)));
    }

    #[test]
    fn bad_register_rejected() {
        // add with rd = 200
        let w = u64::from(Opcode::Add as u8) | (200u64 << 8);
        assert_eq!(decode(w), Err(DecodeError::BadRegister(200)));
    }

    #[test]
    fn canonicalisation_makes_encoding_unique() {
        let a = Instr {
            op: Opcode::Jal,
            rd: Reg::x(1),
            rs1: Reg::x(7),
            rs2: Reg::x(8),
            imm: 32,
        };
        let b = Instr {
            op: Opcode::Jal,
            rd: Reg::x(1),
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm: 32,
        };
        assert_eq!(encode(&a).unwrap(), encode(&b).unwrap());
    }

    #[test]
    fn text_round_trip() {
        let prog = vec![
            Instr::rri(Opcode::Li, Reg::x(1), Reg::ZERO, 10),
            Instr::rrr(Opcode::Add, Reg::x(2), Reg::x(1), Reg::x(1)),
            Instr::branch(Opcode::Bne, Reg::x(2), Reg::ZERO, -8),
            Instr::rri(Opcode::Halt, Reg::ZERO, Reg::ZERO, 0).canonical(),
        ];
        let bytes = encode_text(&prog).unwrap();
        assert_eq!(bytes.len(), prog.len() * 8);
        let back = decode_text(&bytes).unwrap();
        let canon: Vec<Instr> = prog.iter().map(|i| i.canonical()).collect();
        assert_eq!(back, canon);
    }

    #[test]
    fn ragged_text_rejected() {
        assert!(decode_text(&[1, 2, 3]).is_err());
    }

    #[test]
    fn every_opcode_round_trips() {
        for &op in Opcode::ALL {
            let i = Instr {
                op,
                rd: Reg::x(1),
                rs1: Reg::x(2),
                rs2: Reg::x(3),
                imm: 12,
            }
            .canonical();
            let back = decode(encode(&i).unwrap()).unwrap();
            assert_eq!(back, i, "opcode {op}");
        }
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!DecodeError::BadOpcode(3).to_string().is_empty());
        assert!(!EncodeError { imm: 1 << 40 }.to_string().is_empty());
    }
}
