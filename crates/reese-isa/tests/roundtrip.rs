//! Toolchain round-trip properties: encode/decode, display/parse, and
//! assembler robustness against arbitrary text.

use proptest::prelude::*;
use reese_isa::{assemble, decode, disassemble, encode, Instr, Opcode, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..64).prop_map(|r| Reg::from_raw(r).expect("in range"))
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    (
        prop::sample::select(Opcode::ALL.to_vec()),
        arb_reg(),
        arb_reg(),
        arb_reg(),
        any::<i32>(),
    )
        .prop_map(|(op, rd, rs1, rs2, imm)| Instr { op, rd, rs1, rs2, imm: i64::from(imm) })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Binary round trip over the whole instruction space.
    #[test]
    fn encode_decode_identity(instr in arb_instr()) {
        let word = encode(&instr).expect("i32 imm encodes");
        prop_assert_eq!(decode(word).expect("decodes"), instr.canonical());
    }

    /// The printed form of any canonical instruction reassembles to the
    /// same instruction (a line of disassembly is valid assembly).
    #[test]
    fn display_parse_identity(instr in arb_instr()) {
        let canonical = instr.canonical();
        let line = format!("  {}\n  halt\n", disassemble(&canonical));
        let program = assemble(&line)
            .unwrap_or_else(|e| panic!("`{}` must assemble: {e}", disassemble(&canonical)));
        prop_assert_eq!(program.text()[0], canonical);
    }

    /// The assembler never panics, whatever bytes it is fed — it either
    /// produces a program or a structured error.
    #[test]
    fn assembler_never_panics(source in "\\PC{0,200}") {
        let _ = assemble(&source);
    }

    /// Line-noise built from assembler-ish tokens also never panics and
    /// reports a line number when it fails.
    #[test]
    fn assembler_tokens_never_panic(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "add", "ld", "sd", "beq", "li", "la", "halt", ".data", ".word",
                "x1", "x99", "t0", "loop:", "loop", "-42", "0x", "(sp)", ",", ":",
            ]),
            0..12,
        )
    ) {
        let source = tokens.join(" ");
        if let Err(e) = assemble(&source) {
            prop_assert!(e.line <= 1 || e.line == 0, "line {} for one-line input", e.line);
        }
    }

    /// Unknown encodings are rejected, never misdecoded: flipping the
    /// opcode byte to an unassigned value must error.
    #[test]
    fn unassigned_opcodes_rejected(word in any::<u64>()) {
        let op_byte = (word & 0xFF) as u8;
        if Opcode::from_code(op_byte).is_none() {
            prop_assert!(decode(word).is_err());
        }
    }
}
