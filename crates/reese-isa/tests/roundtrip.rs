//! Toolchain round-trip properties: encode/decode, display/parse, and
//! assembler robustness, checked over seeded random instruction streams
//! so every case reproduces exactly.

use reese_isa::{assemble, decode, disassemble, encode, Instr, Opcode, Reg};
use reese_stats::SplitMix64;

fn random_reg(rng: &mut SplitMix64) -> Reg {
    Reg::from_raw((rng.next_u64() & 63) as u8).expect("in range")
}

fn random_instr(rng: &mut SplitMix64) -> Instr {
    Instr {
        op: Opcode::ALL[rng.index(Opcode::ALL.len())],
        rd: random_reg(rng),
        rs1: random_reg(rng),
        rs2: random_reg(rng),
        imm: i64::from(rng.next_u32() as i32),
    }
}

/// Binary round trip over the whole instruction space.
#[test]
fn encode_decode_identity() {
    let mut rng = SplitMix64::new(1);
    for _ in 0..512 {
        let instr = random_instr(&mut rng);
        let word = encode(&instr).expect("i32 imm encodes");
        assert_eq!(decode(word).expect("decodes"), instr.canonical());
    }
}

/// The printed form of any canonical instruction reassembles to the
/// same instruction (a line of disassembly is valid assembly).
#[test]
fn display_parse_identity() {
    let mut rng = SplitMix64::new(2);
    for _ in 0..512 {
        let canonical = random_instr(&mut rng).canonical();
        let line = format!("  {}\n  halt\n", disassemble(&canonical));
        let program = assemble(&line)
            .unwrap_or_else(|e| panic!("`{}` must assemble: {e}", disassemble(&canonical)));
        assert_eq!(program.text()[0], canonical);
    }
}

/// The assembler never panics, whatever bytes it is fed — it either
/// produces a program or a structured error.
#[test]
fn assembler_never_panics() {
    let mut rng = SplitMix64::new(3);
    for _ in 0..512 {
        let len = rng.index(201);
        let source: String = (0..len)
            .map(|_| {
                // Printable-ish ASCII plus the odd control character.
                let c = (rng.next_u64() % 0x60 + 0x20) as u8 as char;
                if rng.chance(0.02) {
                    '\n'
                } else {
                    c
                }
            })
            .collect();
        let _ = assemble(&source);
    }
}

/// Line-noise built from assembler-ish tokens also never panics and
/// reports a line number when it fails.
#[test]
fn assembler_tokens_never_panic() {
    const TOKENS: &[&str] = &[
        "add", "ld", "sd", "beq", "li", "la", "halt", ".data", ".word", "x1", "x99", "t0", "loop:",
        "loop", "-42", "0x", "(sp)", ",", ":",
    ];
    let mut rng = SplitMix64::new(4);
    for _ in 0..512 {
        let n = rng.index(12);
        let source = (0..n)
            .map(|_| TOKENS[rng.index(TOKENS.len())])
            .collect::<Vec<_>>()
            .join(" ");
        if let Err(e) = assemble(&source) {
            assert!(e.line <= 1, "line {} for one-line input", e.line);
        }
    }
}

/// Unknown encodings are rejected, never misdecoded: flipping the
/// opcode byte to an unassigned value must error.
#[test]
fn unassigned_opcodes_rejected() {
    let mut rng = SplitMix64::new(5);
    for _ in 0..512 {
        let word = rng.next_u64();
        let op_byte = (word & 0xFF) as u8;
        if Opcode::from_code(op_byte).is_none() {
            assert!(decode(word).is_err());
        }
    }
}
