//! A tiny, std-only micro-benchmark harness.
//!
//! The workspace must build and run with no network access and no
//! external crates, so the `benches/` targets use this Criterion-shaped
//! API instead of Criterion itself: a [`Criterion`] driver, benchmark
//! groups, and a [`Bencher`] whose `iter` times a closure over a fixed
//! number of samples and prints mean/min wall-clock per iteration (plus
//! element throughput when configured).
//!
//! # Example
//!
//! ```
//! use reese_stats::bench::Criterion;
//!
//! let mut c = Criterion::default();
//! let mut g = c.benchmark_group("math");
//! g.sample_size(10);
//! g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
//! g.finish();
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// The timing summary of one benchmark, for callers that persist
/// results (e.g. the `bench_pipeline` binary writing
/// `BENCH_pipeline.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Mean wall-clock per iteration across the timed samples.
    pub mean: Duration,
    /// Fastest sample — the least-noisy estimate of the true cost.
    pub min: Duration,
    /// Number of timed samples taken.
    pub samples: usize,
}

/// The result of an interleaved A/B comparison (see
/// [`BenchmarkGroup::bench_pair`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairMeasurement {
    /// Timing summary of the first closure.
    pub a: Measurement,
    /// Timing summary of the second closure.
    pub b: Measurement,
    /// Median of the per-sample `a/b` time ratios — how many times
    /// faster `b` is than `a`. Because each ratio divides two
    /// back-to-back timings, slow drift (frequency scaling, a noisy
    /// neighbour on a shared core) cancels instead of biasing one side.
    pub speedup: f64,
}

/// Units for reporting throughput alongside timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times one benchmark and prints its summary line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_measured(id, f);
        self
    }

    /// Like [`BenchmarkGroup::bench_function`], but also returns the
    /// [`Measurement`] so the caller can persist it.
    pub fn bench_measured<F>(&mut self, id: impl Into<String>, mut f: F) -> Measurement
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            n: self.sample_size,
        };
        f(&mut b);
        let total: Duration = b.samples.iter().sum();
        let mean = total
            .checked_div(b.samples.len() as u32)
            .unwrap_or_default();
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let mut line = format!(
            "  {}/{id}: mean {mean:?}, min {min:?} over {} samples",
            self.name,
            b.samples.len()
        );
        if let (Some(Throughput::Elements(n)), false) = (self.throughput, min.is_zero()) {
            line.push_str(&format!(" ({:.0} elem/s)", n as f64 / min.as_secs_f64()));
        }
        println!("{line}");
        Measurement {
            mean,
            min,
            samples: b.samples.len(),
        }
    }

    /// Times two closures with their samples interleaved (`a, b, a, b,
    /// …`) and reports the median of the per-pair `a/b` ratios.
    ///
    /// Use this instead of two [`BenchmarkGroup::bench_measured`] calls
    /// when the quantity of interest is the *ratio*: taking all `a`
    /// samples minutes before all `b` samples lets clock drift and
    /// neighbour load masquerade as a speedup, while adjacent pairs see
    /// the same machine conditions.
    pub fn bench_pair<OA, OB>(
        &mut self,
        id_a: impl Into<String>,
        id_b: impl Into<String>,
        mut fa: impl FnMut() -> OA,
        mut fb: impl FnMut() -> OB,
    ) -> PairMeasurement {
        let (id_a, id_b) = (id_a.into(), id_b.into());
        // Untimed warm-up of both sides.
        black_box(fa());
        black_box(fb());
        let mut times_a = Vec::with_capacity(self.sample_size);
        let mut times_b = Vec::with_capacity(self.sample_size);
        let mut ratios = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(fa());
            let da = start.elapsed();
            let start = Instant::now();
            black_box(fb());
            let db = start.elapsed();
            times_a.push(da);
            times_b.push(db);
            ratios.push(da.as_secs_f64() / db.as_secs_f64());
        }
        ratios.sort_by(|x, y| x.partial_cmp(y).expect("finite timings"));
        let mid = ratios.len() / 2;
        let speedup = if ratios.len() % 2 == 1 {
            ratios[mid]
        } else {
            (ratios[mid - 1] + ratios[mid]) / 2.0
        };
        let summarise = |times: &[Duration]| Measurement {
            mean: times
                .iter()
                .sum::<Duration>()
                .checked_div(times.len() as u32)
                .unwrap_or_default(),
            min: times.iter().min().copied().unwrap_or_default(),
            samples: times.len(),
        };
        let a = summarise(&times_a);
        let b = summarise(&times_b);
        println!(
            "  {}/{id_a}: mean {:?}, min {:?} over {} samples",
            self.name, a.mean, a.min, a.samples
        );
        println!(
            "  {}/{id_b}: mean {:?}, min {:?} over {} samples ({speedup:.2}x vs {id_a}, paired median)",
            self.name, b.mean, b.min, b.samples
        );
        PairMeasurement { a, b, speedup }
    }

    /// Ends the group (marker for call-site symmetry with Criterion).
    pub fn finish(self) {}
}

/// Runs and times the benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    n: usize,
}

impl Bencher {
    /// Calls `f` once per sample, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up run to populate caches and allocators.
        black_box(f());
        for _ in 0..self.n {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares the benchmark entry list, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::bench::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a bench target, Criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        g.finish();
        // 3 timed samples + 1 warm-up.
        assert_eq!(calls, 4);
    }

    #[test]
    fn paired_samples_interleave_and_summarise() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        let order = std::cell::RefCell::new(String::new());
        let p = g.bench_pair(
            "a",
            "b",
            || order.borrow_mut().push('a'),
            || order.borrow_mut().push('b'),
        );
        g.finish();
        assert_eq!(p.a.samples, 5);
        assert_eq!(p.b.samples, 5);
        assert!(p.speedup.is_finite() && p.speedup > 0.0);
        // Warm-up pair followed by strictly alternating timed pairs.
        assert_eq!(*order.borrow(), "abababababab");
    }

    #[test]
    fn measurement_is_returned() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        let m = g.bench_measured("spin", |b| {
            b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
        });
        g.finish();
        assert_eq!(m.samples, 5);
        assert!(m.min <= m.mean);
    }
}
