//! Fixed-bucket histograms for distribution statistics.

use std::fmt;

/// A histogram over `u64` samples with unit-width buckets up to a cap.
///
/// Samples at or above the cap land in an overflow bucket. This is used
/// for quantities with small natural ranges: R-stream Queue occupancy,
/// issue-slot usage per cycle, detection latency in cycles, and similar.
///
/// # Example
///
/// ```
/// use reese_stats::Histogram;
///
/// let mut occupancy = Histogram::new("rqueue_occupancy", 32);
/// occupancy.record(0);
/// occupancy.record(5);
/// occupancy.record(5);
/// assert_eq!(occupancy.count(5), 2);
/// assert_eq!(occupancy.samples(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    name: &'static str,
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u128,
    max_seen: u64,
}

impl Histogram {
    /// Creates a histogram with buckets `0..cap` plus an overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(name: &'static str, cap: usize) -> Self {
        assert!(cap > 0, "histogram needs at least one bucket");
        Self {
            name,
            buckets: vec![0; cap],
            overflow: 0,
            total: 0,
            sum: 0,
            max_seen: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if (value as usize) < self.buckets.len() {
            self.buckets[value as usize] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum += value as u128;
        self.max_seen = self.max_seen.max(value);
    }

    /// Records `n` identical samples at once (a no-op when `n == 0`).
    ///
    /// Equivalent to calling [`Histogram::record`] `n` times; used by
    /// the event-driven simulator loop to account for skipped idle
    /// cycles in bulk.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        if (value as usize) < self.buckets.len() {
            self.buckets[value as usize] += n;
        } else {
            self.overflow += n;
        }
        self.total += n;
        self.sum += value as u128 * n as u128;
        self.max_seen = self.max_seen.max(value);
    }

    /// Number of samples that fell exactly in bucket `value`.
    pub fn count(&self, value: u64) -> u64 {
        self.buckets
            .get(value as usize)
            .copied()
            .unwrap_or(self.overflow)
    }

    /// Samples at or above the cap.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of all samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest sample recorded; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max_seen
    }

    /// Display name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Folds another histogram of identical shape into this one, as if
    /// every sample recorded there had been recorded here. Used to
    /// stitch per-interval distributions from a sharded run into one
    /// whole-program distribution.
    ///
    /// # Panics
    ///
    /// Panics if the histograms differ in name or bucket count — those
    /// describe different quantities and must never be pooled.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.name, other.name,
            "merging differently named histograms"
        );
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "merging histograms of different shapes"
        );
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
        self.max_seen = self.max_seen.max(other.max_seen);
    }

    /// Fraction of samples equal to zero (e.g. "cycles with no R issue").
    pub fn fraction_zero(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.buckets[0] as f64 / self.total as f64
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: n={} mean={:.3} max={}",
            self.name,
            self.total,
            self.mean(),
            self.max_seen
        )?;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b > 0 {
                writeln!(f, "  [{i:>4}] {b}")?;
            }
        }
        if self.overflow > 0 {
            writeln!(f, "  [ >= {}] {}", self.buckets.len(), self.overflow)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::new("h", 4);
        for v in [0, 1, 1, 3, 9] {
            h.record(v);
        }
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.samples(), 5);
        assert_eq!(h.max(), 9);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = Histogram::new("h", 4);
        let mut one = Histogram::new("h", 4);
        bulk.record_n(2, 3);
        bulk.record_n(9, 2); // overflow bucket
        bulk.record_n(1, 0); // no-op
        for v in [2, 2, 2, 9, 9] {
            one.record(v);
        }
        assert_eq!(bulk, one);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let h = Histogram::new("h", 2);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.fraction_zero(), 0.0);
    }

    #[test]
    fn mean_matches_samples() {
        let mut h = Histogram::new("h", 16);
        for v in [2, 4, 6] {
            h.record(v);
        }
        assert!((h.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_zero() {
        let mut h = Histogram::new("h", 4);
        h.record(0);
        h.record(0);
        h.record(2);
        assert!((h.fraction_zero() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_cap_panics() {
        Histogram::new("h", 0);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Histogram::new("h", 4);
        let mut b = Histogram::new("h", 4);
        let mut whole = Histogram::new("h", 4);
        for v in [0, 2, 9] {
            a.record(v);
            whole.record(v);
        }
        for v in [1, 2, 40] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new("h", 4);
        a.record(3);
        let before = a.clone();
        a.merge(&Histogram::new("h", 4));
        assert_eq!(a, before);
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn merge_rejects_shape_mismatch() {
        let mut a = Histogram::new("h", 4);
        a.merge(&Histogram::new("h", 8));
    }

    #[test]
    #[should_panic(expected = "differently named")]
    fn merge_rejects_name_mismatch() {
        let mut a = Histogram::new("a", 4);
        a.merge(&Histogram::new("b", 4));
    }

    #[test]
    fn display_nonempty() {
        let mut h = Histogram::new("occ", 4);
        h.record(1);
        let s = h.to_string();
        assert!(s.contains("occ"));
        assert!(s.contains("n=1"));
    }
}
