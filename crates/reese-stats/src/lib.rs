//! Deterministic statistics utilities shared by the REESE simulators.
//!
//! This crate provides the building blocks every other crate in the
//! workspace uses to count events, summarise distributions, format the
//! ASCII tables printed by the experiment harness, and draw reproducible
//! pseudo-random numbers.
//!
//! All simulators in this workspace must be bit-for-bit deterministic
//! given a configuration and a seed, so randomness flows exclusively
//! through [`SplitMix64`], a tiny, well-studied PRNG implemented here
//! rather than pulled in as a runtime dependency.
//!
//! # Example
//!
//! ```
//! use reese_stats::{Counter, SplitMix64};
//!
//! let mut cycles = Counter::new("cycles");
//! cycles.add(100);
//! assert_eq!(cycles.value(), 100);
//!
//! let mut rng = SplitMix64::new(42);
//! let a = rng.next_u64();
//! let b = SplitMix64::new(42).next_u64();
//! assert_eq!(a, b); // same seed, same stream
//! ```

pub mod bench;
mod counter;
mod histogram;
pub mod parallel;
mod rng;
mod summary;
mod table;

pub use counter::{Counter, Ratio};
pub use histogram::Histogram;
pub use parallel::{available_jobs, par_map_indexed, ParallelStats, WorkerStats};
pub use rng::SplitMix64;
pub use summary::{geomean, mean, percent_delta, stddev};
pub use table::Table;
