//! A tiny deterministic pseudo-random number generator.

/// SplitMix64 pseudo-random number generator.
///
/// Sebastiano Vigna's SplitMix64 is the standard generator for seeding
/// larger PRNGs; its 64-bit state and strong output mixing make it more
/// than adequate for workload generation and fault-site sampling in the
/// simulators, while keeping every run reproducible from a single `u64`
/// seed.
///
/// # Example
///
/// ```
/// use reese_stats::SplitMix64;
///
/// let mut rng = SplitMix64::new(7);
/// let die = rng.range_u64(1, 7); // uniform in [1, 7)
/// assert!((1..7).contains(&die));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the next 32 pseudo-random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping (Lemire). The tiny bias
        // (< 2^-64 per draw) is irrelevant for simulation inputs.
        let hi128 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + hi128
    }

    /// Returns a uniform value in `[0, n)` as `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Forks an independent generator, advancing this one.
    ///
    /// Useful for giving each simulated component its own stream so that
    /// adding draws in one component does not perturb another.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_vector() {
        // First outputs for seed 0 from Vigna's reference implementation.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..10_000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::new(1).range_u64(5, 5);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = SplitMix64::new(77);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0 + f64::EPSILON));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SplitMix64::new(42);
        let mut f1 = root.fork();
        let mut f2 = root.fork();
        // Streams must differ from each other and from the parent.
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = SplitMix64::new(2026);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.index(10)] += 1;
        }
        for &b in &buckets {
            // Each bucket should get ~10_000 hits; allow wide slack.
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }
}
