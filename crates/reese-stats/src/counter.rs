//! Named event counters and derived ratios.

use std::fmt;

/// A named, monotonically increasing event counter.
///
/// Counters are the primitive every simulator statistic is built from:
/// cycles, committed instructions, cache misses, R-queue stalls, and so
/// on. They are deliberately plain — no interior mutability, no atomics —
/// because the simulators are single-threaded and deterministic.
///
/// # Example
///
/// ```
/// use reese_stats::Counter;
///
/// let mut commits = Counter::new("committed_instructions");
/// commits.incr();
/// commits.add(9);
/// assert_eq!(commits.value(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with a display name.
    pub fn new(name: &'static str) -> Self {
        Self { name, value: 0 }
    }

    /// Increments the counter by one.
    #[inline]
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Display name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets the count to zero (e.g. after a warm-up phase).
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// This counter divided by another, as an [`f64`] ratio.
    ///
    /// Returns 0.0 when the denominator is zero, which is the convention
    /// the reporting layer wants (an idle unit has utilisation 0, not NaN).
    pub fn per(&self, denom: &Counter) -> f64 {
        Ratio::of(self.value, denom.value).value()
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// A numerator/denominator pair that formats as a rate.
///
/// # Example
///
/// ```
/// use reese_stats::Ratio;
///
/// let ipc = Ratio::of(200, 100);
/// assert_eq!(ipc.value(), 2.0);
/// assert_eq!(Ratio::of(1, 0).value(), 0.0); // never NaN
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    /// Creates a ratio `num / den`.
    pub fn of(num: u64, den: u64) -> Self {
        Self { num, den }
    }

    /// The ratio as a float; zero when the denominator is zero.
    pub fn value(&self) -> f64 {
        if self.den == 0 {
            0.0
        } else {
            self.num as f64 / self.den as f64
        }
    }

    /// The ratio as a percentage (0–100 scale); zero when undefined.
    pub fn percent(&self) -> f64 {
        self.value() * 100.0
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} ({}/{})", self.value(), self.num, self.den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        assert_eq!(c.value(), 0);
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(c.name(), "x");
    }

    #[test]
    fn counter_reset() {
        let mut c = Counter::new("x");
        c.add(10);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn counter_display_nonempty() {
        let c = Counter::new("cycles");
        assert_eq!(c.to_string(), "cycles = 0");
    }

    #[test]
    fn ratio_basic() {
        assert_eq!(Ratio::of(3, 4).value(), 0.75);
        assert_eq!(Ratio::of(3, 4).percent(), 75.0);
    }

    #[test]
    fn ratio_zero_denominator_is_zero() {
        assert_eq!(Ratio::of(10, 0).value(), 0.0);
    }

    #[test]
    fn per_helper() {
        let mut insns = Counter::new("insns");
        let mut cycles = Counter::new("cycles");
        insns.add(150);
        cycles.add(100);
        assert!((insns.per(&cycles) - 1.5).abs() < 1e-12);
    }
}
