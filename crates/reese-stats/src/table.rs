//! Minimal ASCII table formatter for experiment output.

use std::fmt;

/// A right-aligned ASCII table, the output format of every harness
/// binary in `reese-bench`.
///
/// The first column is left-aligned (row labels); all other columns are
/// right-aligned (numbers). Column widths are computed from content.
///
/// # Example
///
/// ```
/// use reese_stats::Table;
///
/// let mut t = Table::new(vec!["bench", "baseline", "reese"]);
/// t.row(vec!["gcc".into(), "1.82".into(), "1.57".into()]);
/// let s = t.to_string();
/// assert!(s.contains("gcc"));
/// assert!(s.contains("1.57"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        assert!(!header.is_empty(), "table needs at least one column");
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// are truncated to the header width.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Convenience: appends a row of a label plus `f64` values formatted
    /// with `prec` decimal places.
    pub fn row_f64(&mut self, label: &str, values: &[f64], prec: usize) -> &mut Self {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.prec$}")));
        self.row(cells)
    }

    /// Renders the table as CSV (RFC 4180 quoting where needed), for
    /// piping experiment results into plotting tools.
    ///
    /// # Example
    ///
    /// ```
    /// let mut t = reese_stats::Table::new(vec!["a", "b"]);
    /// t.row(vec!["x,y".into(), "1".into()]);
    /// assert_eq!(t.to_csv(), "a,b\n\"x,y\",1\n");
    /// ```
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| cell(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.header);
        for row in &self.rows {
            write_row(row);
        }
        out
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.header.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                if i == 0 {
                    write!(f, "{:<width$}", cell, width = widths[0])?;
                } else {
                    write!(f, "  {:>width$}", cell, width = widths[i])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_alignment() {
        let mut t = Table::new(vec!["name", "v"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["bb".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // values right-aligned in the value column
        assert!(lines[2].ends_with(" 1"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        // Should not panic when rendered.
        let _ = t.to_string();
    }

    #[test]
    fn row_f64_formats_precision() {
        let mut t = Table::new(vec!["bench", "ipc"]);
        t.row_f64("gcc", &[1.23456], 2);
        assert!(t.to_string().contains("1.23"));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_panics() {
        Table::new(Vec::<String>::new());
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let mut t = Table::new(vec!["name", "v"]);
        t.row(vec!["plain".into(), "1".into()]);
        t.row(vec!["has,comma".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "name,v\nplain,1\n\"has,comma\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn markdown_has_separator_row() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }
}
