//! Scalar summary statistics used by the experiment harness.

/// Arithmetic mean of a slice; 0.0 when empty.
///
/// # Example
///
/// ```
/// assert_eq!(reese_stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of a slice; 0.0 when empty or when any element is
/// non-positive (geomean is undefined there, and the harness treats that
/// as "no data").
///
/// The paper averages IPC arithmetically ("AV." bars); the harness also
/// reports geomeans because they are the standard way to aggregate
/// benchmark speedups.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Sample standard deviation; 0.0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Percentage change from `baseline` to `value`, signed.
///
/// Returns 0.0 when the baseline is zero. A negative result means
/// `value` is below the baseline — e.g. REESE IPC 1.72 against baseline
/// 2.00 yields −14%.
///
/// # Example
///
/// ```
/// let overhead = reese_stats::percent_delta(2.0, 1.72);
/// assert!((overhead + 14.0).abs() < 1e-9);
/// ```
pub fn percent_delta(baseline: f64, value: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (value - baseline) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_empty() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_rejects_nonpositive() {
        assert_eq!(geomean(&[1.0, 0.0]), 0.0);
        assert_eq!(geomean(&[1.0, -2.0]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn stddev_basic() {
        assert_eq!(stddev(&[5.0]), 0.0);
        let s = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn percent_delta_signs() {
        assert!(percent_delta(2.0, 1.0) < 0.0);
        assert!(percent_delta(1.0, 2.0) > 0.0);
        assert_eq!(percent_delta(0.0, 1.0), 0.0);
        assert!((percent_delta(2.0, 1.72) + 14.0).abs() < 1e-9);
    }
}
