//! A std-only scoped-thread worker pool for deterministic fan-out.
//!
//! Fault campaigns and figure sweeps are embarrassingly parallel: every
//! trial (or kernel×variant cell) is an independent full simulator run.
//! [`par_map_indexed`] fans a slice of work items out over
//! `std::thread::scope` workers and returns the results **in input
//! order**, so any caller that pre-draws its random parameters serially
//! gets output bit-identical to a serial loop — parallelism changes
//! wall-clock time, never results.
//!
//! Every run also returns a [`ParallelStats`] with wall-clock time,
//! per-worker item counts, and per-worker busy time, which the
//! experiment binaries surface as throughput lines.
//!
//! # Example
//!
//! ```
//! use reese_stats::parallel::par_map_indexed;
//!
//! let inputs: Vec<u64> = (0..100).collect();
//! let (serial, _) = par_map_indexed(1, &inputs, |i, &x| x * x + i as u64);
//! let (parallel, stats) = par_map_indexed(4, &inputs, |i, &x| x * x + i as u64);
//! assert_eq!(serial, parallel); // order and values identical
//! assert_eq!(stats.items(), 100);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Returns the default worker count: the host's available parallelism.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// What one worker did during a [`par_map_indexed`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index, `0..jobs`.
    pub worker: usize,
    /// Items this worker processed.
    pub items: u64,
    /// Items this worker claimed one at a time from the shared tail
    /// region — steals that level out stragglers — as opposed to items
    /// handed out in bulk chunks. Always 0 on the serial path.
    pub steals: u64,
    /// Time spent inside the work closure.
    pub busy: Duration,
}

/// Throughput observability for one parallel (or serial) map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelStats {
    /// Workers used (1 = the serial path).
    pub jobs: usize,
    /// End-to-end wall-clock time of the whole map.
    pub wall: Duration,
    /// Per-worker utilization counters, indexed by worker.
    pub workers: Vec<WorkerStats>,
}

impl ParallelStats {
    /// Total items processed across all workers.
    pub fn items(&self) -> u64 {
        self.workers.iter().map(|w| w.items).sum()
    }

    /// Total per-item tail claims (steals) across all workers.
    pub fn steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Items completed per wall-clock second; 0 for an instant run.
    pub fn items_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.items() as f64 / secs
        } else {
            0.0
        }
    }

    /// Mean fraction of the wall-clock the workers spent busy, in
    /// `[0, 1]`; 1.0 means perfect utilization. 0 when nothing ran —
    /// an empty run has no meaningful busy/wall ratio, only timer
    /// noise.
    pub fn utilisation(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 || self.workers.is_empty() || self.items() == 0 {
            return 0.0;
        }
        let busy: f64 = self.workers.iter().map(|w| w.busy.as_secs_f64()).sum();
        (busy / (wall * self.workers.len() as f64)).min(1.0)
    }
}

impl fmt::Display for ParallelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} items in {:.3}s on {} worker{} — {:.0} items/s, {:.0}% utilization",
            self.items(),
            self.wall.as_secs_f64(),
            self.jobs,
            if self.jobs == 1 { "" } else { "s" },
            self.items_per_sec(),
            self.utilisation() * 100.0
        )?;
        if self.jobs > 1 {
            write!(f, ", {} tail steals", self.steals())?;
            for w in &self.workers {
                write!(
                    f,
                    "\n  worker {}: {} items ({} stolen), busy {:.3}s",
                    w.worker,
                    w.items,
                    w.steals,
                    w.busy.as_secs_f64()
                )?;
            }
        }
        Ok(())
    }
}

/// Maps `f` over `items` with up to `jobs` scoped worker threads,
/// returning results in input order plus utilization counters.
///
/// `jobs == 1` (or a single item) runs inline on the calling thread —
/// the serial path — with identical results; more jobs only changes
/// timing. Workers steal index *ranges* from a shared atomic cursor —
/// one `fetch_add` per chunk instead of per item — and fall back to
/// per-item stealing over the final chunk's worth of indices so the
/// stragglers self-level.
///
/// # Panics
///
/// Propagates a panic from `f` after all workers stop.
pub fn par_map_indexed<T, R, F>(jobs: usize, items: &[T], f: F) -> (Vec<R>, ParallelStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let start = Instant::now();
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        let t0 = Instant::now();
        let results: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        let busy = t0.elapsed();
        let stats = ParallelStats {
            jobs: 1,
            wall: start.elapsed(),
            workers: vec![WorkerStats {
                worker: 0,
                items: items.len() as u64,
                steals: 0,
                busy,
            }],
        };
        return (results, stats);
    }

    // Chunked handout: the bulk of the indices is claimed a chunk at a
    // time (one atomic RMW per chunk), while the last `jobs` chunks'
    // worth is claimed item by item so a slow final chunk cannot leave
    // the other workers idle. With few items `bulk` is 0 and this
    // degenerates to pure per-item stealing.
    const CHUNKS_PER_WORKER: usize = 8;
    let chunk = (items.len() / (jobs * CHUNKS_PER_WORKER)).max(1);
    let bulk = items.len() - (chunk * jobs).min(items.len());
    let bulk_cursor = AtomicUsize::new(0);
    let tail_cursor = AtomicUsize::new(bulk);
    let per_worker: Vec<(Vec<(usize, R)>, WorkerStats)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|worker| {
                let bulk_cursor = &bulk_cursor;
                let tail_cursor = &tail_cursor;
                let f = &f;
                s.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    let mut busy = Duration::ZERO;
                    let mut steals = 0u64;
                    let mut work = |i: usize, out: &mut Vec<(usize, R)>| {
                        let t0 = Instant::now();
                        let r = f(i, &items[i]);
                        busy += t0.elapsed();
                        out.push((i, r));
                    };
                    loop {
                        let lo = bulk_cursor.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= bulk {
                            break;
                        }
                        for i in lo..(lo + chunk).min(bulk) {
                            work(i, &mut out);
                        }
                    }
                    loop {
                        let i = tail_cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        steals += 1;
                        work(i, &mut out);
                    }
                    let stats = WorkerStats {
                        worker,
                        items: out.len() as u64,
                        steals,
                        busy,
                    };
                    (out, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // Merge the per-worker results back into input order.
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    let mut workers = Vec::with_capacity(jobs);
    for (pairs, stats) in per_worker {
        for (i, r) in pairs {
            debug_assert!(slots[i].is_none(), "index {i} computed twice");
            slots[i] = Some(r);
        }
        workers.push(stats);
    }
    workers.sort_by_key(|w| w.worker);
    let results = slots
        .into_iter()
        .map(|o| o.expect("every index computed exactly once"))
        .collect();
    (
        results,
        ParallelStats {
            jobs,
            wall: start.elapsed(),
            workers,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let (out, stats) = par_map_indexed(8, &items, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        assert_eq!(stats.items(), 257);
        assert_eq!(stats.workers.len(), 8);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..100).collect();
        let (a, s1) = par_map_indexed(1, &items, |i, &x| x.wrapping_mul(i as u64 + 7));
        let (b, s4) = par_map_indexed(4, &items, |i, &x| x.wrapping_mul(i as u64 + 7));
        assert_eq!(a, b);
        assert_eq!(s1.jobs, 1);
        assert_eq!(s4.jobs, 4);
    }

    #[test]
    fn chunked_handout_covers_every_index_exactly_once() {
        // Sizes chosen to hit the edges of the chunk arithmetic: fewer
        // items than workers, exactly one chunk, a ragged final chunk,
        // and a large bulk region.
        for len in [0usize, 1, 2, 7, 8, 9, 63, 64, 65, 255, 1024, 1025] {
            for jobs in [2usize, 3, 8] {
                let items: Vec<usize> = (0..len).collect();
                let (out, stats) = par_map_indexed(jobs, &items, |i, &x| {
                    assert_eq!(i, x);
                    x
                });
                assert_eq!(out, items, "len {len} jobs {jobs}");
                assert_eq!(stats.items(), len as u64, "len {len} jobs {jobs}");
            }
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let (out, stats) = par_map_indexed::<u8, u8, _>(4, &[], |_, &x| x);
        assert!(out.is_empty());
        assert_eq!(stats.items(), 0);
        assert_eq!(stats.jobs, 1, "no items needs no extra workers");
    }

    #[test]
    fn jobs_capped_to_items() {
        let (_, stats) = par_map_indexed(64, &[1, 2, 3], |_, &x| x);
        assert!(stats.jobs <= 3);
    }

    #[test]
    fn zero_jobs_means_one() {
        let (out, stats) = par_map_indexed(0, &[5u8], |_, &x| x);
        assert_eq!(out, vec![5]);
        assert_eq!(stats.jobs, 1);
    }

    #[test]
    fn every_worker_is_reported_once() {
        let items: Vec<u32> = (0..50).collect();
        let (_, stats) = par_map_indexed(4, &items, |_, &x| x);
        let ids: Vec<usize> = stats.workers.iter().map(|w| w.worker).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(stats.items(), 50);
    }

    #[test]
    fn tail_steals_are_accounted() {
        // Every index past the bulk region is claimed one at a time, so
        // total steals equals the tail size: items - bulk.
        let items: Vec<usize> = (0..257).collect();
        let jobs = 4;
        let (_, stats) = par_map_indexed(jobs, &items, |_, &x| x);
        let chunk = items.len() / (jobs * 8);
        let tail = (chunk * jobs).min(items.len());
        assert_eq!(stats.steals(), tail as u64);
        assert!(stats.to_string().contains("tail steals"));

        let (_, serial) = par_map_indexed(1, &items, |_, &x| x);
        assert_eq!(serial.steals(), 0, "serial path never steals");
    }

    #[test]
    fn display_mentions_throughput() {
        let (_, stats) = par_map_indexed(2, &[1u8, 2, 3, 4], |_, &x| x);
        let s = stats.to_string();
        assert!(s.contains("items"), "{s}");
        assert!(s.contains("utilization"), "{s}");
    }
}
