//! Cycle-level observability for the REESE timing simulators.
//!
//! The simulators in `reese-pipeline` and `reese-core` run their cycle
//! loops over a generic [`Observer`] — a statically dispatched sink for
//! per-instruction lifecycle events and per-cycle machine state. The
//! default [`NoopObserver`] has `ENABLED == false`, so every hook
//! monomorphises to nothing and the un-traced simulator is the exact
//! machine code it was before this crate existed (`bench_pipeline`
//! keeps a traced-vs-untraced pair as the regression guard).
//!
//! Three layers:
//!
//! * [`TraceRing`] — a bounded ring of [`TraceEvent`]s (SimpleScalar's
//!   `ptrace` facility, re-imagined), exportable as Chrome trace-event
//!   JSON for Perfetto ([`TraceRing::to_chrome_json`]) or a compact
//!   text pipetrace ([`TraceRing::to_pipetrace_text`]).
//! * [`MetricsSeries`] — a per-interval time series of queue
//!   occupancies, per-FU-class busy cycles, R-stream issue
//!   opportunities taken vs. missed, stall causes, and scheduler
//!   bookkeeping cost; exportable to CSV/JSON and mergeable across
//!   shard intervals ([`MetricsSeries::merge_concat`]) or campaign
//!   trials ([`MetricsSeries::merge_pooled`]).
//! * [`Tracer`] — the concrete [`Observer`] wiring both together.
//!
//! # Example
//!
//! ```
//! use reese_trace::{Observer, Stage, Stream, Tracer, TraceEvent, CycleState};
//!
//! let mut t = Tracer::new().with_interval(4);
//! let mut state = CycleState::default();
//! for cycle in 1..=10 {
//!     state.committed += 1;
//!     t.event(TraceEvent {
//!         cycle,
//!         seq: state.committed - 1,
//!         pc: 0x1000,
//!         stage: Stage::Commit,
//!         stream: Stream::Primary,
//!     });
//!     t.cycle(cycle, &state);
//! }
//! t.finish();
//! assert_eq!(t.ring().len(), 10);
//! assert_eq!(t.metrics().rows.len(), 3); // cycles 1-3, 4-7, 8-10
//! assert!(t.ring().to_chrome_json().contains("traceEvents"));
//! ```

use reese_isa::FuClass;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Number of functional-unit classes tracked per metrics row (the
/// length of [`FuClass::ALL`]).
pub const NUM_FU_CLASSES: usize = 5;

/// Pipeline stage a [`TraceEvent`] belongs to, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Instruction delivered by the front end into the fetch queue.
    Fetch,
    /// Instruction entered the RUU (and LSQ, if memory).
    Dispatch,
    /// Execution started on a functional unit. With
    /// [`Stream::Redundant`], this is an R-issue from the R-stream
    /// Queue.
    Issue,
    /// Execution finished; dependants woken / result latched.
    Writeback,
    /// Completed primary instruction moved into the R-stream Queue.
    Migrate,
    /// P and R results compared at the queue head.
    Compare,
    /// Instruction architecturally retired.
    Commit,
    /// Detection flush: the machine squashed back to this instruction.
    Flush,
    /// Forensic marker: the injected fault fired on this instruction.
    /// Never emitted by the simulators themselves — the fault-forensics
    /// layer synthesises these when annotating a reconstructed trace.
    Inject,
    /// Forensic marker: first event at which the faulty run diverged
    /// from the clean baseline.
    Diverge,
    /// Forensic marker: the comparison (or trap) that caught the fault.
    Detect,
}

impl Stage {
    /// Every stage, in pipeline order; the forensic markers sort last.
    pub const ALL: [Stage; 11] = [
        Stage::Fetch,
        Stage::Dispatch,
        Stage::Issue,
        Stage::Writeback,
        Stage::Migrate,
        Stage::Compare,
        Stage::Commit,
        Stage::Flush,
        Stage::Inject,
        Stage::Diverge,
        Stage::Detect,
    ];

    /// Short lowercase name, used in both export formats.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Fetch => "fetch",
            Stage::Dispatch => "dispatch",
            Stage::Issue => "issue",
            Stage::Writeback => "writeback",
            Stage::Migrate => "migrate",
            Stage::Compare => "compare",
            Stage::Commit => "commit",
            Stage::Flush => "flush",
            Stage::Inject => "inject",
            Stage::Diverge => "diverge",
            Stage::Detect => "detect",
        }
    }

    fn index(self) -> u64 {
        Stage::ALL.iter().position(|&s| s == self).unwrap() as u64
    }
}

/// Which execution stream an event belongs to.
///
/// This deliberately mirrors the fault-injection `Stream` in
/// `reese-core`; it is redeclared here so the trace layer stays at the
/// bottom of the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stream {
    /// The primary (P) execution.
    Primary,
    /// The redundant (R) re-execution.
    Redundant,
}

impl Stream {
    /// One-letter tag used by the text pipetrace.
    pub fn tag(self) -> &'static str {
        match self {
            Stream::Primary => "P",
            Stream::Redundant => "R",
        }
    }

    fn index(self) -> u64 {
        match self {
            Stream::Primary => 0,
            Stream::Redundant => 1,
        }
    }
}

/// One instruction's passage through one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event happened.
    pub cycle: u64,
    /// Dynamic sequence number of the instruction.
    pub seq: u64,
    /// Program counter of the instruction.
    pub pc: u64,
    /// Stage reached.
    pub stage: Stage,
    /// Stream tag (P vs. R).
    pub stream: Stream,
}

impl TraceEvent {
    /// Perfetto track id: one lane per (stage, stream) pair, ordered by
    /// pipeline stage.
    fn tid(&self) -> u64 {
        self.stage.index() * 2 + self.stream.index()
    }
}

/// A snapshot of the machine handed to [`Observer::cycle`] once per
/// *executed* cycle.
///
/// Counters are **cumulative** since the start of the run, so an
/// interval row is a simple difference of two snapshots and a bulk idle
/// skip (the event-driven scheduler's clock jump) needs no per-cycle
/// replay. Occupancies are **instantaneous** at the end of the cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleState {
    /// Instructions committed so far.
    pub committed: u64,
    /// Primary-stream issues so far.
    pub issued: u64,
    /// Redundant-stream issues so far (0 on the baseline machine).
    pub r_issued: u64,
    /// R-issue opportunities considered but not taken so far — pending
    /// R entries inside the lookahead window that found no functional
    /// unit (or no issue-width budget) this cycle.
    pub r_missed: u64,
    /// Dispatch stalls charged to a full RUU so far.
    pub dispatch_stall_ruu: u64,
    /// Dispatch stalls charged to a full LSQ so far.
    pub dispatch_stall_lsq: u64,
    /// Cycles the fetch queue was empty at dispatch so far.
    pub fetch_empty: u64,
    /// Unit-cycles of occupancy per functional-unit class so far,
    /// indexed in [`FuClass::ALL`] order.
    pub fu_busy: [u64; NUM_FU_CLASSES],
    /// Scheduler bookkeeping operations so far: ReadyRing
    /// inserts/removes, EventWheel pushes/pops, and R-stream front
    /// window maintenance (one op per incremental append/remove, plus
    /// one per recovered seq on the rare rebuild scans) across the RUU
    /// and the R-stream Queue. 0 in `Scan` mode, which maintains none
    /// of these structures — so this counter is the direct price of
    /// event-driven scheduling, and comparing it against the per-cycle
    /// probes it replaces proves the per-cycle op reduction.
    pub sched_ops: u64,
    /// RUU entries resident at the end of this cycle.
    pub ruu_occ: usize,
    /// LSQ entries resident at the end of this cycle.
    pub lsq_occ: usize,
    /// R-stream Queue entries resident at the end of this cycle.
    pub rqueue_occ: usize,
    /// Fetch-queue entries resident at the end of this cycle.
    pub fetchq_occ: usize,
}

/// A sink for simulator observability hooks.
///
/// The simulators are generic over `O: Observer` and guard every hook
/// behind `if O::ENABLED { ... }`, so with [`NoopObserver`] (the
/// default used by all public `run*` entry points) the hooks — and the
/// work of building their arguments — compile away entirely.
pub trait Observer {
    /// Whether the hooks do anything. `false` makes the simulator
    /// byte-identical to an unobserved build.
    const ENABLED: bool;

    /// An instruction reached a pipeline stage.
    fn event(&mut self, ev: TraceEvent);

    /// An executed cycle ended with the given machine state.
    fn cycle(&mut self, cycle: u64, state: &CycleState);

    /// The event-driven scheduler skipped the idle cycles `from..to`
    /// (the landing cycle `to` executes normally and gets its own
    /// [`Observer::cycle`] call). `state` already includes the bulk
    /// bookkeeping for the skipped span; occupancies are constant
    /// across it.
    fn idle_skip(&mut self, from: u64, to: u64, state: &CycleState);
}

/// The do-nothing observer: every hook is an empty inline function and
/// `ENABLED == false`, so observed code paths monomorphise to the
/// original un-traced simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _ev: TraceEvent) {}

    #[inline(always)]
    fn cycle(&mut self, _cycle: u64, _state: &CycleState) {}

    #[inline(always)]
    fn idle_skip(&mut self, _from: u64, _to: u64, _state: &CycleState) {}
}

/// Fans every hook out to two observers, in order. `ENABLED` is the OR
/// of the parts, so pairing with [`NoopObserver`] costs nothing extra —
/// each part still guards its own work behind its own flag at runtime.
///
/// Observers borrow mutably for the duration of a run, so composing an
/// analysis probe with a [`Tracer`] needs this combinator rather than
/// two separate passes.
#[derive(Debug)]
pub struct Pair<'a, A, B>(pub &'a mut A, pub &'a mut B);

impl<A: Observer, B: Observer> Observer for Pair<'_, A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn event(&mut self, ev: TraceEvent) {
        if A::ENABLED {
            self.0.event(ev);
        }
        if B::ENABLED {
            self.1.event(ev);
        }
    }

    #[inline]
    fn cycle(&mut self, cycle: u64, state: &CycleState) {
        if A::ENABLED {
            self.0.cycle(cycle, state);
        }
        if B::ENABLED {
            self.1.cycle(cycle, state);
        }
    }

    #[inline]
    fn idle_skip(&mut self, from: u64, to: u64, state: &CycleState) {
        if A::ENABLED {
            self.0.idle_skip(from, to, state);
        }
        if B::ENABLED {
            self.1.idle_skip(from, to, state);
        }
    }
}

/// An unbounded forensic log: every lifecycle event and every executed
/// cycle's [`CycleState`], kept in full.
///
/// This is the divergence observer behind `reese explain`: the same
/// anchored window is run twice — clean and with the fault injected —
/// each under a `DeepLog`, and the two logs are diffed event-by-event
/// to locate the first point where the faulty machine departs from the
/// baseline. Unlike [`TraceRing`] nothing is evicted, so it is only
/// suitable for short windows (a fault-trial window is a few thousand
/// instructions), never for whole-program runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeepLog {
    /// Every event, in emission order.
    pub events: Vec<TraceEvent>,
    /// `(cycle, state)` for every executed cycle, in order.
    pub states: Vec<(u64, CycleState)>,
}

/// One logged `(cycle, state)` snapshot from a [`DeepLog`].
pub type CycleSnapshot = (u64, CycleState);

impl DeepLog {
    /// An empty log.
    pub fn new() -> DeepLog {
        DeepLog::default()
    }

    /// Index of the first event at which `self` (the faulty run)
    /// diverges from `clean` — either the events differ, or one log
    /// ends first. `None` when the streams are identical.
    pub fn first_event_divergence(&self, clean: &DeepLog) -> Option<usize> {
        let common = self.events.len().min(clean.events.len());
        (0..common)
            .find(|&i| self.events[i] != clean.events[i])
            .or_else(|| (self.events.len() != clean.events.len()).then_some(common))
    }

    /// The first executed cycle whose [`CycleState`] differs from the
    /// clean run's state for the same position, with both snapshots.
    /// `None` when every common cycle matches and both logs have the
    /// same length.
    pub fn first_state_divergence<'a>(
        &'a self,
        clean: &'a DeepLog,
    ) -> Option<(&'a CycleSnapshot, Option<&'a CycleSnapshot>)> {
        let common = self.states.len().min(clean.states.len());
        for i in 0..common {
            if self.states[i] != clean.states[i] {
                return Some((&self.states[i], Some(&clean.states[i])));
            }
        }
        if self.states.len() > clean.states.len() {
            return Some((&self.states[common], None));
        }
        None
    }
}

impl Observer for DeepLog {
    const ENABLED: bool = true;

    #[inline]
    fn event(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    #[inline]
    fn cycle(&mut self, cycle: u64, state: &CycleState) {
        self.states.push((cycle, *state));
    }

    #[inline]
    fn idle_skip(&mut self, _from: u64, _to: u64, _state: &CycleState) {}
}

/// A bounded ring buffer of [`TraceEvent`]s keeping the **last**
/// `capacity` events; older events are dropped (and counted) so a long
/// run cannot exhaust memory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceRing {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting (and counting) the oldest if full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Appends another ring's events with their cycles shifted by
    /// `cycle_offset` — the stitch rule for sharded intervals, whose
    /// local clocks all start at zero.
    pub fn merge_concat(&mut self, other: &TraceRing, cycle_offset: u64) {
        self.dropped += other.dropped;
        for ev in &other.events {
            self.push(TraceEvent {
                cycle: ev.cycle + cycle_offset,
                ..*ev
            });
        }
    }

    /// Exports the ring as Chrome trace-event JSON (the format Perfetto
    /// and `chrome://tracing` load).
    ///
    /// Each event becomes a complete (`"ph": "X"`) slice of one cycle,
    /// with `ts` in cycles, on a track per (stage, stream) pair;
    /// `thread_name` metadata labels the tracks. The count of events
    /// dropped by the ring is recorded under `otherData`.
    pub fn to_chrome_json(&self) -> String {
        let mut entries: Vec<String> = Vec::with_capacity(self.events.len() + 16);
        let mut tids: Vec<(u64, Stage, Stream)> = self
            .events
            .iter()
            .map(|e| (e.tid(), e.stage, e.stream))
            .collect();
        tids.sort_unstable();
        tids.dedup();
        for (tid, stage, stream) in tids {
            entries.push(format!(
                "    {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{} ({})\"}}}}",
                stage.name(),
                stream.tag()
            ));
        }
        for e in &self.events {
            entries.push(format!(
                "    {{\"name\": \"{} #{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": 1, \
                 \"pid\": 1, \"tid\": {}, \"args\": {{\"seq\": {}, \"pc\": \"{:#x}\", \
                 \"stream\": \"{}\"}}}}",
                e.stage.name(),
                e.seq,
                e.cycle,
                e.tid(),
                e.seq,
                e.pc,
                e.stream.tag()
            ));
        }
        let mut s = String::from("{\n");
        let _ = writeln!(
            s,
            "  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {{\"dropped_events\": {}}},",
            self.dropped
        );
        s.push_str("  \"traceEvents\": [\n");
        s.push_str(&entries.join(",\n"));
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Exports the ring as a compact text pipetrace, one event per
    /// line, à la SimpleScalar's `ptrace`.
    pub fn to_pipetrace_text(&self) -> String {
        let mut s = format!(
            "# reese pipetrace: {} events retained, {} dropped\n# cycle stream stage seq pc\n",
            self.events.len(),
            self.dropped
        );
        for e in &self.events {
            let _ = writeln!(
                s,
                "{:>10} {} {:<9} #{:<8} {:#010x}",
                e.cycle,
                e.stream.tag(),
                e.stage.name(),
                e.seq,
                e.pc
            );
        }
        s
    }
}

/// One sampling interval of the metrics time series. Counter fields are
/// **deltas** over `[start_cycle, end_cycle)`; `*_occ_sum` fields are
/// cycle-weighted occupancy sums (divide by [`MetricsRow::cycles`] for
/// the interval average).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsRow {
    /// First cycle of the interval.
    pub start_cycle: u64,
    /// One past the last cycle of the interval. Under the event-driven
    /// scheduler an idle skip can stretch a row past the nominal
    /// sampling interval; the recorded boundaries are always exact.
    pub end_cycle: u64,
    /// Cycles the simulator actually executed (the rest were bulk idle
    /// skips).
    pub executed_cycles: u64,
    /// Instructions committed in the interval.
    pub committed: u64,
    /// Primary-stream issues in the interval.
    pub issued: u64,
    /// Redundant-stream issues in the interval.
    pub r_issued: u64,
    /// R-issue opportunities not taken in the interval.
    pub r_missed: u64,
    /// Dispatch stalls on a full RUU in the interval.
    pub dispatch_stall_ruu: u64,
    /// Dispatch stalls on a full LSQ in the interval.
    pub dispatch_stall_lsq: u64,
    /// Cycles with an empty fetch queue in the interval.
    pub fetch_empty: u64,
    /// Unit-cycles of FU occupancy in the interval, [`FuClass::ALL`]
    /// order.
    pub fu_busy: [u64; NUM_FU_CLASSES],
    /// Scheduler bookkeeping operations in the interval.
    pub sched_ops: u64,
    /// Cycle-weighted RUU occupancy sum.
    pub ruu_occ_sum: u64,
    /// Cycle-weighted LSQ occupancy sum.
    pub lsq_occ_sum: u64,
    /// Cycle-weighted R-stream Queue occupancy sum.
    pub rqueue_occ_sum: u64,
    /// Cycle-weighted fetch-queue occupancy sum.
    pub fetchq_occ_sum: u64,
}

impl MetricsRow {
    /// Width of the interval in cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }

    /// A counter expressed as a rate per 1000 cycles of this interval.
    pub fn per_1k_cycles(&self, count: u64) -> f64 {
        let c = self.cycles();
        if c == 0 {
            0.0
        } else {
            count as f64 * 1000.0 / c as f64
        }
    }

    /// Average occupancy from a cycle-weighted sum.
    pub fn avg_occ(&self, occ_sum: u64) -> f64 {
        let c = self.cycles();
        if c == 0 {
            0.0
        } else {
            occ_sum as f64 / c as f64
        }
    }

    /// Field-wise sum of the counters of two rows covering the same
    /// nominal interval (the pooled-merge rule); boundaries widen to
    /// the union.
    fn pool(&mut self, other: &MetricsRow) {
        self.start_cycle = self.start_cycle.min(other.start_cycle);
        self.end_cycle = self.end_cycle.max(other.end_cycle);
        self.executed_cycles += other.executed_cycles;
        self.committed += other.committed;
        self.issued += other.issued;
        self.r_issued += other.r_issued;
        self.r_missed += other.r_missed;
        self.dispatch_stall_ruu += other.dispatch_stall_ruu;
        self.dispatch_stall_lsq += other.dispatch_stall_lsq;
        self.fetch_empty += other.fetch_empty;
        for (a, b) in self.fu_busy.iter_mut().zip(other.fu_busy.iter()) {
            *a += *b;
        }
        self.sched_ops += other.sched_ops;
        self.ruu_occ_sum += other.ruu_occ_sum;
        self.lsq_occ_sum += other.lsq_occ_sum;
        self.rqueue_occ_sum += other.rqueue_occ_sum;
        self.fetchq_occ_sum += other.fetchq_occ_sum;
    }

    fn shifted(&self, cycle_offset: u64) -> MetricsRow {
        MetricsRow {
            start_cycle: self.start_cycle + cycle_offset,
            end_cycle: self.end_cycle + cycle_offset,
            ..*self
        }
    }
}

/// A per-interval metrics time series, as collected by [`Tracer`] or
/// merged from several runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSeries {
    /// Nominal sampling interval in cycles.
    pub interval: u64,
    /// The rows, in cycle order.
    pub rows: Vec<MetricsRow>,
}

impl MetricsSeries {
    /// Creates an empty series with the given nominal interval.
    pub fn new(interval: u64) -> MetricsSeries {
        MetricsSeries {
            interval: interval.max(1),
            rows: Vec::new(),
        }
    }

    /// Appends another series' rows with cycles shifted by
    /// `cycle_offset` — the stitch rule for `reese shard` intervals,
    /// whose local clocks all start at zero.
    pub fn merge_concat(&mut self, other: &MetricsSeries, cycle_offset: u64) {
        if self.interval == 1 && self.rows.is_empty() {
            self.interval = other.interval;
        }
        self.rows
            .extend(other.rows.iter().map(|r| r.shifted(cycle_offset)));
    }

    /// Pools another series row-by-row (by index) — the merge rule for
    /// campaign trials, which all start at cycle zero. Counters add;
    /// interval boundaries widen to the union; rows past the shorter
    /// series are appended unchanged.
    pub fn merge_pooled(&mut self, other: &MetricsSeries) {
        if self.interval == 1 && self.rows.is_empty() {
            self.interval = other.interval;
        }
        for (i, row) in other.rows.iter().enumerate() {
            if let Some(mine) = self.rows.get_mut(i) {
                mine.pool(row);
            } else {
                self.rows.push(*row);
            }
        }
    }

    /// The CSV header matching [`MetricsSeries::to_csv`]. Stall causes
    /// are exported both as raw counts and as rates per 1k cycles.
    pub fn csv_header() -> String {
        let mut s = String::from(
            "start_cycle,end_cycle,cycles,executed_cycles,committed,issued,\
             r_issued,r_missed,dispatch_stall_ruu_full,dispatch_stall_lsq_full,\
             ruu_stall_per_1k_cycles,lsq_stall_per_1k_cycles,fetch_empty_cycles,\
             sched_ops,avg_ruu_occ,avg_lsq_occ,avg_rqueue_occ,avg_fetchq_occ",
        );
        for class in FuClass::ALL {
            let _ = write!(s, ",busy_{}", fu_class_slug(class));
        }
        s
    }

    /// Exports the series as CSV, one row per interval.
    pub fn to_csv(&self) -> String {
        let mut s = MetricsSeries::csv_header();
        s.push('\n');
        for r in &self.rows {
            let _ = write!(
                s,
                "{},{},{},{},{},{},{},{},{},{},{:.4},{:.4},{},{},{:.3},{:.3},{:.3},{:.3}",
                r.start_cycle,
                r.end_cycle,
                r.cycles(),
                r.executed_cycles,
                r.committed,
                r.issued,
                r.r_issued,
                r.r_missed,
                r.dispatch_stall_ruu,
                r.dispatch_stall_lsq,
                r.per_1k_cycles(r.dispatch_stall_ruu),
                r.per_1k_cycles(r.dispatch_stall_lsq),
                r.fetch_empty,
                r.sched_ops,
                r.avg_occ(r.ruu_occ_sum),
                r.avg_occ(r.lsq_occ_sum),
                r.avg_occ(r.rqueue_occ_sum),
                r.avg_occ(r.fetchq_occ_sum),
            );
            for b in r.fu_busy {
                let _ = write!(s, ",{b}");
            }
            s.push('\n');
        }
        s
    }

    /// Exports the series as a JSON array of row objects.
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\n  \"interval\": {},\n  \"rows\": [\n", self.interval);
        for (i, r) in self.rows.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"start_cycle\": {}, \"end_cycle\": {}, \"executed_cycles\": {}, \
                 \"committed\": {}, \"issued\": {}, \"r_issued\": {}, \"r_missed\": {}, \
                 \"dispatch_stall_ruu_full\": {}, \"dispatch_stall_lsq_full\": {}, \
                 \"ruu_stall_per_1k_cycles\": {:.4}, \"lsq_stall_per_1k_cycles\": {:.4}, \
                 \"fetch_empty_cycles\": {}, \"sched_ops\": {}, \
                 \"avg_ruu_occ\": {:.3}, \"avg_lsq_occ\": {:.3}, \"avg_rqueue_occ\": {:.3}, \
                 \"avg_fetchq_occ\": {:.3}, \"fu_busy\": [",
                r.start_cycle,
                r.end_cycle,
                r.executed_cycles,
                r.committed,
                r.issued,
                r.r_issued,
                r.r_missed,
                r.dispatch_stall_ruu,
                r.dispatch_stall_lsq,
                r.per_1k_cycles(r.dispatch_stall_ruu),
                r.per_1k_cycles(r.dispatch_stall_lsq),
                r.fetch_empty,
                r.sched_ops,
                r.avg_occ(r.ruu_occ_sum),
                r.avg_occ(r.lsq_occ_sum),
                r.avg_occ(r.rqueue_occ_sum),
                r.avg_occ(r.fetchq_occ_sum),
            );
            let busy: Vec<String> = r.fu_busy.iter().map(|b| b.to_string()).collect();
            s.push_str(&busy.join(", "));
            s.push_str("]}");
            if i + 1 < self.rows.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Totals over the whole series (a pooled fold of every row).
    pub fn totals(&self) -> MetricsRow {
        let mut total = match self.rows.first() {
            Some(first) => *first,
            None => return MetricsRow::default(),
        };
        for r in &self.rows[1..] {
            total.pool(r);
        }
        total
    }
}

/// Stable lowercase slug for a functional-unit class, used in CSV
/// headers.
fn fu_class_slug(class: FuClass) -> &'static str {
    match class {
        FuClass::IntAlu => "int_alu",
        FuClass::IntMulDiv => "int_muldiv",
        FuClass::FpAlu => "fp_alu",
        FuClass::FpMulDiv => "fp_muldiv",
        FuClass::MemPort => "mem_port",
    }
}

/// The concrete collecting [`Observer`]: events go into a [`TraceRing`],
/// per-cycle state folds into a [`MetricsSeries`].
///
/// A metrics row is emitted at the first **executed** cycle at or past
/// each interval boundary, so under the event-driven scheduler a bulk
/// idle skip can stretch a row past the nominal interval; every row
/// records its exact `[start_cycle, end_cycle)` span. Call
/// [`Tracer::finish`] after the run to flush the final partial row.
#[derive(Debug, Clone)]
pub struct Tracer {
    ring: TraceRing,
    series: MetricsSeries,
    row_start: u64,
    base: CycleState,
    last: CycleState,
    last_cycle: u64,
    executed: u64,
    ruu_occ_sum: u64,
    lsq_occ_sum: u64,
    rqueue_occ_sum: u64,
    fetchq_occ_sum: u64,
    seen_any: bool,
}

impl Tracer {
    /// Default sampling interval in cycles.
    pub const DEFAULT_INTERVAL: u64 = 10_000;
    /// Default event-ring capacity.
    pub const DEFAULT_RING_CAPACITY: usize = 65_536;

    /// Creates a tracer with the default interval and ring capacity.
    pub fn new() -> Tracer {
        Tracer {
            ring: TraceRing::new(Tracer::DEFAULT_RING_CAPACITY),
            series: MetricsSeries::new(Tracer::DEFAULT_INTERVAL),
            row_start: 0,
            base: CycleState::default(),
            last: CycleState::default(),
            last_cycle: 0,
            executed: 0,
            ruu_occ_sum: 0,
            lsq_occ_sum: 0,
            rqueue_occ_sum: 0,
            fetchq_occ_sum: 0,
            seen_any: false,
        }
    }

    /// Sets the metrics sampling interval (cycles, minimum 1).
    pub fn with_interval(mut self, interval: u64) -> Tracer {
        self.series.interval = interval.max(1);
        self
    }

    /// Sets the event-ring capacity.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Tracer {
        self.ring = TraceRing::new(capacity);
        self
    }

    /// Closes the current partial metrics row, if any. Idempotent;
    /// call once after the simulation returns.
    pub fn finish(&mut self) {
        if self.seen_any && self.last_cycle + 1 > self.row_start {
            self.close_row(self.last_cycle + 1);
        }
    }

    /// The collected event ring.
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// The collected metrics series.
    pub fn metrics(&self) -> &MetricsSeries {
        &self.series
    }

    /// Consumes the tracer, returning the ring and the series.
    pub fn into_parts(self) -> (TraceRing, MetricsSeries) {
        (self.ring, self.series)
    }

    fn close_row(&mut self, end: u64) {
        let s = self.last;
        let b = self.base;
        let mut fu_busy = [0u64; NUM_FU_CLASSES];
        for (out, (now, before)) in fu_busy
            .iter_mut()
            .zip(s.fu_busy.iter().zip(b.fu_busy.iter()))
        {
            *out = now - before;
        }
        self.series.rows.push(MetricsRow {
            start_cycle: self.row_start,
            end_cycle: end,
            executed_cycles: self.executed,
            committed: s.committed - b.committed,
            issued: s.issued - b.issued,
            r_issued: s.r_issued - b.r_issued,
            r_missed: s.r_missed - b.r_missed,
            dispatch_stall_ruu: s.dispatch_stall_ruu - b.dispatch_stall_ruu,
            dispatch_stall_lsq: s.dispatch_stall_lsq - b.dispatch_stall_lsq,
            fetch_empty: s.fetch_empty - b.fetch_empty,
            fu_busy,
            sched_ops: s.sched_ops - b.sched_ops,
            ruu_occ_sum: self.ruu_occ_sum,
            lsq_occ_sum: self.lsq_occ_sum,
            rqueue_occ_sum: self.rqueue_occ_sum,
            fetchq_occ_sum: self.fetchq_occ_sum,
        });
        self.row_start = end;
        self.base = s;
        self.executed = 0;
        self.ruu_occ_sum = 0;
        self.lsq_occ_sum = 0;
        self.rqueue_occ_sum = 0;
        self.fetchq_occ_sum = 0;
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Observer for Tracer {
    const ENABLED: bool = true;

    fn event(&mut self, ev: TraceEvent) {
        self.ring.push(ev);
    }

    fn cycle(&mut self, cycle: u64, state: &CycleState) {
        self.ruu_occ_sum += state.ruu_occ as u64;
        self.lsq_occ_sum += state.lsq_occ as u64;
        self.rqueue_occ_sum += state.rqueue_occ as u64;
        self.fetchq_occ_sum += state.fetchq_occ as u64;
        self.executed += 1;
        self.last = *state;
        self.last_cycle = cycle;
        self.seen_any = true;
        if cycle + 1 >= self.row_start + self.series.interval {
            self.close_row(cycle + 1);
        }
    }

    fn idle_skip(&mut self, from: u64, to: u64, state: &CycleState) {
        let n = to - from;
        self.ruu_occ_sum += state.ruu_occ as u64 * n;
        self.lsq_occ_sum += state.lsq_occ as u64 * n;
        self.rqueue_occ_sum += state.rqueue_occ as u64 * n;
        self.fetchq_occ_sum += state.fetchq_occ as u64 * n;
        self.last = *state;
        self.seen_any = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, seq: u64, stage: Stage, stream: Stream) -> TraceEvent {
        TraceEvent {
            cycle,
            seq,
            pc: 0x40_0000 + seq * 4,
            stage,
            stream,
        }
    }

    #[test]
    fn fu_class_count_matches_isa() {
        assert_eq!(FuClass::ALL.len(), NUM_FU_CLASSES);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut r = TraceRing::new(3);
        for c in 0..5 {
            r.push(ev(c, c, Stage::Commit, Stream::Primary));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4], "the last events win");
    }

    #[test]
    fn chrome_json_has_events_and_track_names() {
        let mut r = TraceRing::new(16);
        r.push(ev(1, 0, Stage::Fetch, Stream::Primary));
        r.push(ev(5, 0, Stage::Issue, Stream::Redundant));
        let json = r.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("fetch (P)"));
        assert!(json.contains("issue (R)"));
        assert!(json.contains("\"dropped_events\": 0"));
        // Crude structural sanity: balanced braces and brackets.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_ring_still_exports_valid_shapes() {
        let r = TraceRing::new(4);
        let json = r.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(r.to_pipetrace_text().starts_with("# reese pipetrace"));
    }

    #[test]
    fn pipetrace_text_lists_events_in_order() {
        let mut r = TraceRing::new(16);
        r.push(ev(3, 7, Stage::Dispatch, Stream::Primary));
        r.push(ev(9, 7, Stage::Commit, Stream::Primary));
        let text = r.to_pipetrace_text();
        let dispatch = text.find("dispatch").unwrap();
        let commit = text.find("commit").unwrap();
        assert!(dispatch < commit);
        assert!(text.contains("#7"));
    }

    #[test]
    fn tracer_rows_are_deltas() {
        let mut t = Tracer::new().with_interval(5);
        let mut state = CycleState::default();
        for cycle in 1..=10 {
            state.committed += 2;
            state.issued += 3;
            state.ruu_occ = 4;
            t.cycle(cycle, &state);
        }
        t.finish();
        let rows = &t.metrics().rows;
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].start_cycle, 0);
        assert_eq!(rows[0].end_cycle, 5);
        assert_eq!(rows[0].committed, 8, "cycles 1..=4 in the first row");
        assert_eq!(rows[1].committed, 10, "cycles 5..=9 in the second row");
        assert_eq!(rows[2].committed, 2, "cycle 10 flushed by finish()");
        assert!((rows[1].avg_occ(rows[1].ruu_occ_sum) - 4.0).abs() < 1e-9);
        let total: u64 = rows.iter().map(|r| r.committed).sum();
        assert_eq!(total, state.committed);
    }

    #[test]
    fn idle_skip_stretches_a_row_without_losing_occupancy() {
        let mut t = Tracer::new().with_interval(4);
        let mut state = CycleState {
            rqueue_occ: 2,
            ..CycleState::default()
        };
        t.cycle(1, &state);
        // Skip cycles 2..100, landing on 100.
        state.fetch_empty += 98;
        t.idle_skip(2, 100, &state);
        state.committed += 1;
        t.cycle(100, &state);
        t.finish();
        let rows = &t.metrics().rows;
        assert_eq!(rows.len(), 1, "the skip stretches one row");
        assert_eq!(rows[0].end_cycle, 101);
        assert_eq!(rows[0].executed_cycles, 2);
        assert_eq!(rows[0].fetch_empty, 98);
        // Occupancy 2 held for 1 (executed) + 98 (skipped) + 1 (landing).
        assert_eq!(rows[0].rqueue_occ_sum, 2 * 100);
    }

    #[test]
    fn finish_is_idempotent_and_skips_empty() {
        let mut t = Tracer::new();
        t.finish();
        assert!(t.metrics().rows.is_empty());
        let state = CycleState::default();
        t.cycle(1, &state);
        t.finish();
        t.finish();
        assert_eq!(t.metrics().rows.len(), 1);
    }

    #[test]
    fn merge_concat_shifts_cycles() {
        let mut a = MetricsSeries::new(10);
        a.rows.push(MetricsRow {
            start_cycle: 0,
            end_cycle: 10,
            committed: 5,
            ..MetricsRow::default()
        });
        let mut b = MetricsSeries::new(10);
        b.rows.push(MetricsRow {
            start_cycle: 0,
            end_cycle: 7,
            committed: 3,
            ..MetricsRow::default()
        });
        a.merge_concat(&b, 10);
        assert_eq!(a.rows.len(), 2);
        assert_eq!(a.rows[1].start_cycle, 10);
        assert_eq!(a.rows[1].end_cycle, 17);
        assert_eq!(a.totals().committed, 8);
    }

    #[test]
    fn merge_pooled_adds_by_row_index() {
        let row = |committed| MetricsRow {
            start_cycle: 0,
            end_cycle: 10,
            committed,
            ..MetricsRow::default()
        };
        let mut a = MetricsSeries::new(10);
        a.rows.push(row(5));
        let mut b = MetricsSeries::new(10);
        b.rows.push(row(3));
        b.rows.push(row(2));
        a.merge_pooled(&b);
        assert_eq!(a.rows.len(), 2);
        assert_eq!(a.rows[0].committed, 8);
        assert_eq!(a.rows[1].committed, 2, "extra rows append unchanged");
    }

    #[test]
    fn csv_has_header_rates_and_fu_columns() {
        let mut s = MetricsSeries::new(1000);
        s.rows.push(MetricsRow {
            start_cycle: 0,
            end_cycle: 1000,
            dispatch_stall_ruu: 10,
            ..MetricsRow::default()
        });
        let csv = s.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("ruu_stall_per_1k_cycles"));
        assert!(header.contains("busy_int_alu"));
        assert!(header.contains("busy_mem_port"));
        let row = lines.next().unwrap();
        assert_eq!(
            header.split(',').count(),
            row.split(',').count(),
            "row arity must match the header"
        );
        assert!(row.contains("10.0000"), "10 stalls over 1k cycles");
    }

    #[test]
    fn json_is_structurally_balanced() {
        let mut s = MetricsSeries::new(10);
        s.rows.push(MetricsRow {
            start_cycle: 0,
            end_cycle: 10,
            committed: 4,
            fu_busy: [1, 2, 3, 4, 5],
            ..MetricsRow::default()
        });
        let json = s.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"fu_busy\": [1, 2, 3, 4, 5]"));
    }

    #[test]
    fn noop_observer_is_disabled() {
        const { assert!(!NoopObserver::ENABLED) };
        const { assert!(Tracer::ENABLED) };
    }
}
