//! Direction predictors: static, bimodal, gshare, two-level, combined.

use crate::TwoBit;

/// A conditional-branch direction predictor.
///
/// `predict` is called at fetch, `update` at branch resolution with the
/// actual outcome. Global-history predictors update their history
/// non-speculatively at `update` time — a standard simulator
/// simplification that slightly pessimises prediction on tight
/// back-to-back branches.
pub trait DirectionPredictor {
    /// Predicts whether the branch at `pc` is taken.
    fn predict(&self, pc: u64) -> bool;
    /// Trains the predictor with the resolved outcome.
    fn update(&mut self, pc: u64, taken: bool);
    /// Short display name ("gshare", "bimodal", …).
    fn name(&self) -> &'static str;
    /// Flattens the predictor's mutable state into words for
    /// checkpointing (two-bit tables packed 32 counters per word).
    /// Stateless predictors return an empty vector.
    fn export_words(&self) -> Vec<u64> {
        Vec::new()
    }
    /// Restores state produced by
    /// [`DirectionPredictor::export_words`] on a predictor of the same
    /// kind and geometry.
    ///
    /// # Panics
    ///
    /// Stateful predictors panic on a word-count mismatch.
    fn import_words(&mut self, words: &[u64]) {
        let _ = words;
    }
}

fn index(pc: u64, bits: u32) -> usize {
    // Instructions are 8 bytes; drop the alignment bits before hashing.
    ((pc >> 3) & ((1 << bits) - 1)) as usize
}

/// Packs two-bit counters 32 per word, low bits first.
fn pack_counters(table: &[TwoBit]) -> Vec<u64> {
    let mut words = vec![0u64; table.len().div_ceil(32)];
    for (i, c) in table.iter().enumerate() {
        words[i / 32] |= u64::from(c.state()) << ((i % 32) * 2);
    }
    words
}

/// Unpacks counters produced by [`pack_counters`] into `table`.
///
/// # Panics
///
/// Panics if `words` is not exactly the packed size of `table`.
fn unpack_counters(words: &[u64], table: &mut [TwoBit]) {
    assert_eq!(
        words.len(),
        table.len().div_ceil(32),
        "counter snapshot size mismatch"
    );
    for (i, c) in table.iter_mut().enumerate() {
        *c = TwoBit::from_state(((words[i / 32] >> ((i % 32) * 2)) & 0b11) as u8);
    }
}

/// Predicts every branch taken (or not), the degenerate baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticPredictor {
    taken: bool,
}

impl StaticPredictor {
    /// Always-taken predictor.
    pub fn taken() -> StaticPredictor {
        StaticPredictor { taken: true }
    }

    /// Always-not-taken predictor.
    pub fn not_taken() -> StaticPredictor {
        StaticPredictor { taken: false }
    }
}

impl DirectionPredictor for StaticPredictor {
    fn predict(&self, _pc: u64) -> bool {
        self.taken
    }

    fn update(&mut self, _pc: u64, _taken: bool) {}

    fn name(&self) -> &'static str {
        if self.taken {
            "always-taken"
        } else {
            "always-not-taken"
        }
    }
}

/// Per-PC two-bit counters (Smith's bimodal predictor).
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<TwoBit>,
    bits: u32,
}

impl Bimodal {
    /// Creates a predictor with `2^bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 28.
    pub fn new(bits: u32) -> Bimodal {
        assert!((1..=28).contains(&bits), "table bits out of range");
        Bimodal {
            table: vec![TwoBit::default(); 1 << bits],
            bits,
        }
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&self, pc: u64) -> bool {
        self.table[index(pc, self.bits)].taken()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        self.table[index(pc, self.bits)].train(taken);
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }

    fn export_words(&self) -> Vec<u64> {
        pack_counters(&self.table)
    }

    fn import_words(&mut self, words: &[u64]) {
        unpack_counters(words, &mut self.table);
    }
}

/// McFarling's gshare: global history XOR-folded into the PC index.
///
/// This is the predictor named in Table 1 of the REESE paper
/// ("gshare, from \[26\]" — McFarling, DEC WRL TN-36).
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<TwoBit>,
    bits: u32,
    history: u64,
    history_bits: u32,
}

impl Gshare {
    /// Creates a gshare with `2^bits` counters and `history_bits` of
    /// global history.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside 1–28 or `history_bits > bits`.
    pub fn new(bits: u32, history_bits: u32) -> Gshare {
        assert!((1..=28).contains(&bits), "table bits out of range");
        assert!(history_bits <= bits, "history cannot exceed index width");
        Gshare {
            table: vec![TwoBit::default(); 1 << bits],
            bits,
            history: 0,
            history_bits,
        }
    }

    fn idx(&self, pc: u64) -> usize {
        let h = self.history & ((1 << self.history_bits) - 1);
        (index(pc, self.bits) as u64 ^ h) as usize
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.idx(pc)].taken()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.idx(pc);
        self.table[i].train(taken);
        self.history = (self.history << 1) | u64::from(taken);
    }

    fn name(&self) -> &'static str {
        "gshare"
    }

    fn export_words(&self) -> Vec<u64> {
        let mut words = pack_counters(&self.table);
        words.push(self.history);
        words
    }

    fn import_words(&mut self, words: &[u64]) {
        let (history, counters) = words.split_last().expect("gshare snapshot has history");
        unpack_counters(counters, &mut self.table);
        self.history = *history;
    }
}

/// A classic two-level PAg predictor: per-PC history registers indexing
/// a shared pattern table.
#[derive(Debug, Clone)]
pub struct TwoLevel {
    histories: Vec<u64>,
    history_bits: u32,
    pattern: Vec<TwoBit>,
}

impl TwoLevel {
    /// Creates a predictor with `2^l1_bits` history registers of
    /// `history_bits` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `l1_bits` is outside 1–20 or `history_bits` outside 1–20.
    pub fn new(l1_bits: u32, history_bits: u32) -> TwoLevel {
        assert!((1..=20).contains(&l1_bits), "l1 bits out of range");
        assert!(
            (1..=20).contains(&history_bits),
            "history bits out of range"
        );
        TwoLevel {
            histories: vec![0; 1 << l1_bits],
            history_bits,
            pattern: vec![TwoBit::default(); 1 << history_bits],
        }
    }

    fn pattern_idx(&self, pc: u64) -> usize {
        let h = self.histories[index(pc, self.histories.len().trailing_zeros())];
        (h & ((1 << self.history_bits) - 1)) as usize
    }
}

impl DirectionPredictor for TwoLevel {
    fn predict(&self, pc: u64) -> bool {
        self.pattern[self.pattern_idx(pc)].taken()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let pi = self.pattern_idx(pc);
        self.pattern[pi].train(taken);
        let hi = index(pc, self.histories.len().trailing_zeros());
        self.histories[hi] = (self.histories[hi] << 1) | u64::from(taken);
    }

    fn name(&self) -> &'static str {
        "two-level"
    }

    fn export_words(&self) -> Vec<u64> {
        let mut words = self.histories.clone();
        words.extend(pack_counters(&self.pattern));
        words
    }

    fn import_words(&mut self, words: &[u64]) {
        let (histories, pattern) = words.split_at(self.histories.len());
        self.histories.copy_from_slice(histories);
        unpack_counters(pattern, &mut self.pattern);
    }
}

/// McFarling's combining predictor: a chooser table picks, per PC,
/// between a bimodal and a gshare component.
#[derive(Debug, Clone)]
pub struct Combined {
    bimodal: Bimodal,
    gshare: Gshare,
    chooser: Vec<TwoBit>,
    bits: u32,
}

impl Combined {
    /// Creates the combining predictor with `2^bits` chooser entries and
    /// equally sized components.
    pub fn new(bits: u32, history_bits: u32) -> Combined {
        Combined {
            bimodal: Bimodal::new(bits),
            gshare: Gshare::new(bits, history_bits),
            // Chooser starts weakly preferring gshare.
            chooser: vec![TwoBit::weakly_taken(); 1 << bits],
            bits,
        }
    }
}

impl DirectionPredictor for Combined {
    fn predict(&self, pc: u64) -> bool {
        if self.chooser[index(pc, self.bits)].taken() {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let b = self.bimodal.predict(pc);
        let g = self.gshare.predict(pc);
        // Train the chooser toward whichever component was right when
        // they disagree (taken-state = "prefer gshare").
        if b != g {
            self.chooser[index(pc, self.bits)].train(g == taken);
        }
        self.bimodal.update(pc, taken);
        self.gshare.update(pc, taken);
    }

    fn name(&self) -> &'static str {
        "combined"
    }

    fn export_words(&self) -> Vec<u64> {
        let mut words = self.bimodal.export_words();
        words.extend(self.gshare.export_words());
        words.extend(pack_counters(&self.chooser));
        words
    }

    fn import_words(&mut self, words: &[u64]) {
        let bim_len = self.bimodal.table.len().div_ceil(32);
        let gs_len = self.gshare.table.len().div_ceil(32) + 1;
        let (bim, rest) = words.split_at(bim_len);
        let (gs, chooser) = rest.split_at(gs_len);
        self.bimodal.import_words(bim);
        self.gshare.import_words(gs);
        unpack_counters(chooser, &mut self.chooser);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_predictors() {
        let t = StaticPredictor::taken();
        let n = StaticPredictor::not_taken();
        assert!(t.predict(0));
        assert!(!n.predict(0));
        assert_eq!(t.name(), "always-taken");
    }

    #[test]
    fn bimodal_learns_a_bias() {
        let mut p = Bimodal::new(10);
        for _ in 0..4 {
            p.update(0x1000, true);
        }
        assert!(p.predict(0x1000));
        assert!(!p.predict(0x2000), "other PCs unaffected");
    }

    #[test]
    fn bimodal_aliasing_is_by_index() {
        let mut p = Bimodal::new(4); // 16 entries, pc >> 3 masked
        for _ in 0..4 {
            p.update(0, true);
        }
        // pc = 16 entries * 8 bytes = 128 aliases with pc = 0
        assert!(p.predict(128));
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        // A strictly alternating branch is invisible to bimodal but easy
        // for global history.
        let mut g = Gshare::new(12, 8);
        let mut bi = Bimodal::new(12);
        let pc = 0x4000;
        let mut g_correct = 0;
        let mut b_correct = 0;
        for i in 0..2000u32 {
            let outcome = i % 2 == 0;
            if g.predict(pc) == outcome {
                g_correct += 1;
            }
            if bi.predict(pc) == outcome {
                b_correct += 1;
            }
            g.update(pc, outcome);
            bi.update(pc, outcome);
        }
        assert!(
            g_correct > 1800,
            "gshare should nail alternation, got {g_correct}"
        );
        assert!(
            b_correct < 1200,
            "bimodal cannot learn alternation, got {b_correct}"
        );
    }

    #[test]
    fn two_level_learns_short_loop() {
        // Pattern: taken,taken,taken,not (a 4-iteration loop).
        let mut p = TwoLevel::new(10, 8);
        let pc = 0x8000;
        for _ in 0..100 {
            for outcome in [true, true, true, false] {
                p.update(pc, outcome);
            }
        }
        let mut correct = 0;
        for outcome in [true, true, true, false].into_iter().cycle().take(100) {
            if p.predict(pc) == outcome {
                correct += 1;
            }
            p.update(pc, outcome);
        }
        assert!(
            correct >= 95,
            "two-level should learn a loop pattern, got {correct}"
        );
    }

    #[test]
    fn combined_at_least_matches_components() {
        let mut c = Combined::new(12, 8);
        let pc = 0xA000;
        let mut correct = 0;
        for i in 0..2000u32 {
            let outcome = i % 2 == 0;
            if c.predict(pc) == outcome {
                correct += 1;
            }
            c.update(pc, outcome);
        }
        assert!(
            correct > 1700,
            "combined should pick the gshare side, got {correct}"
        );
    }

    #[test]
    #[should_panic(expected = "history cannot exceed")]
    fn gshare_history_wider_than_index_panics() {
        Gshare::new(4, 8);
    }

    #[test]
    #[should_panic(expected = "table bits out of range")]
    fn zero_bits_panics() {
        Bimodal::new(0);
    }
}
