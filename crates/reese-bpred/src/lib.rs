//! Branch prediction for the REESE simulators.
//!
//! Implements the predictors SimpleScalar offers, most importantly the
//! **gshare** predictor the REESE paper configures in Table 1
//! (McFarling, "Combining Branch Predictors", DEC WRL TN-36), plus
//! bimodal, two-level, the McFarling combining predictor, a branch
//! target buffer, and a return-address stack, all wired together in
//! [`BranchUnit`].
//!
//! # Example
//!
//! ```
//! use reese_bpred::{BranchUnit, PredictorConfig, PredictorKind};
//!
//! let mut bu = BranchUnit::new(PredictorConfig::paper().with_kind(PredictorKind::Bimodal));
//! for _ in 0..4 {
//!     let p = bu.predict_branch(0x1000);
//!     bu.resolve_branch(0x1000, p, true);
//! }
//! assert!(bu.predict_branch(0x1000)); // learned the bias
//! ```

mod btb;
mod counter;
mod direction;
mod unit;

pub use btb::{Btb, Ras, RasSnapshot};
pub use counter::TwoBit;
pub use direction::{Bimodal, Combined, DirectionPredictor, Gshare, StaticPredictor, TwoLevel};
pub use unit::{BranchSnapshot, BranchStats, BranchUnit, PredictorConfig, PredictorKind};
