//! Saturating two-bit counters, the workhorse of dynamic prediction.

/// A two-bit saturating counter.
///
/// States 0–1 predict not-taken, 2–3 predict taken. The classic FSM used
/// by bimodal, gshare, two-level, and chooser tables alike.
///
/// # Example
///
/// ```
/// use reese_bpred::TwoBit;
///
/// let mut c = TwoBit::weakly_not_taken();
/// assert!(!c.taken());
/// c.train(true);
/// assert!(c.taken()); // one taken outcome flips a weak counter
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TwoBit(u8);

impl TwoBit {
    /// Strongly not-taken (state 0).
    pub const fn strongly_not_taken() -> TwoBit {
        TwoBit(0)
    }

    /// Weakly not-taken (state 1) — the usual initial state.
    pub const fn weakly_not_taken() -> TwoBit {
        TwoBit(1)
    }

    /// Weakly taken (state 2).
    pub const fn weakly_taken() -> TwoBit {
        TwoBit(2)
    }

    /// Strongly taken (state 3).
    pub const fn strongly_taken() -> TwoBit {
        TwoBit(3)
    }

    /// Current prediction.
    pub const fn taken(self) -> bool {
        self.0 >= 2
    }

    /// Trains toward the actual outcome, saturating at 0 and 3.
    pub fn train(&mut self, taken: bool) {
        if taken {
            if self.0 < 3 {
                self.0 += 1;
            }
        } else if self.0 > 0 {
            self.0 -= 1;
        }
    }

    /// Raw state (0–3), mainly for tests.
    pub const fn state(self) -> u8 {
        self.0
    }

    /// Rebuilds a counter from a raw state, saturating anything above 3
    /// (checkpoint restore).
    pub const fn from_state(state: u8) -> TwoBit {
        TwoBit(if state > 3 { 3 } else { state })
    }
}

impl Default for TwoBit {
    fn default() -> Self {
        TwoBit::weakly_not_taken()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_both_ends() {
        let mut c = TwoBit::strongly_taken();
        c.train(true);
        assert_eq!(c.state(), 3);
        let mut c = TwoBit::strongly_not_taken();
        c.train(false);
        assert_eq!(c.state(), 0);
    }

    #[test]
    fn hysteresis() {
        let mut c = TwoBit::strongly_taken();
        c.train(false);
        assert!(
            c.taken(),
            "one not-taken outcome does not flip a strong counter"
        );
        c.train(false);
        assert!(!c.taken());
    }

    #[test]
    fn full_walk() {
        let mut c = TwoBit::strongly_not_taken();
        for expected in [1, 2, 3, 3] {
            c.train(true);
            assert_eq!(c.state(), expected);
        }
    }
}
