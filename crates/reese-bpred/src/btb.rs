//! Branch target buffer and return-address stack.

/// A direct-mapped branch target buffer.
///
/// Maps a branch/jump PC to its most recent target. In this simulator
/// direct branch and `jal` targets are computed at decode, so the BTB's
/// real job is predicting indirect (`jalr`) targets that are not
/// returns.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>, // (pc tag, target)
    bits: u32,
}

impl Btb {
    /// Creates a BTB with `2^bits` entries.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside 1–24.
    pub fn new(bits: u32) -> Btb {
        assert!((1..=24).contains(&bits), "btb bits out of range");
        Btb {
            entries: vec![None; 1 << bits],
            bits,
        }
    }

    fn idx(&self, pc: u64) -> usize {
        ((pc >> 3) & ((1 << self.bits) - 1)) as usize
    }

    /// Predicted target for `pc`, if this PC has an entry.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        match self.entries[self.idx(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Records the resolved target of `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let i = self.idx(pc);
        self.entries[i] = Some((pc, target));
    }

    /// Exports every `(pc tag, target)` slot for checkpointing.
    pub fn export_entries(&self) -> Vec<Option<(u64, u64)>> {
        self.entries.clone()
    }

    /// Restores slots exported by [`Btb::export_entries`].
    ///
    /// # Panics
    ///
    /// Panics on an entry-count mismatch.
    pub fn import_entries(&mut self, entries: &[Option<(u64, u64)>]) {
        assert_eq!(
            entries.len(),
            self.entries.len(),
            "BTB snapshot size mismatch"
        );
        self.entries.copy_from_slice(entries);
    }
}

/// A return-address stack.
///
/// Calls push their return address; returns pop a prediction. The stack
/// is a fixed-size circular buffer that silently wraps on overflow, like
/// hardware.
#[derive(Debug, Clone)]
pub struct Ras {
    stack: Vec<u64>,
    top: usize,
    depth: usize,
    capacity: usize,
}

impl Ras {
    /// Creates a RAS with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Ras {
        assert!(capacity > 0, "RAS needs at least one entry");
        Ras {
            stack: vec![0; capacity],
            top: 0,
            depth: 0,
            capacity,
        }
    }

    /// Pushes a return address (a call executed).
    pub fn push(&mut self, addr: u64) {
        self.top = (self.top + 1) % self.capacity;
        self.stack[self.top] = addr;
        self.depth = (self.depth + 1).min(self.capacity);
    }

    /// Pops the predicted return address, if the stack is non-empty.
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        let addr = self.stack[self.top];
        self.top = (self.top + self.capacity - 1) % self.capacity;
        self.depth -= 1;
        Some(addr)
    }

    /// Current number of valid entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Exports the circular buffer, top index, and depth.
    pub fn export_state(&self) -> RasSnapshot {
        RasSnapshot {
            stack: self.stack.clone(),
            top: self.top,
            depth: self.depth,
        }
    }

    /// Restores state exported by [`Ras::export_state`].
    ///
    /// # Panics
    ///
    /// Panics on a capacity mismatch or out-of-range top/depth.
    pub fn import_state(&mut self, snap: &RasSnapshot) {
        assert_eq!(snap.stack.len(), self.capacity, "RAS snapshot mismatch");
        assert!(snap.top < self.capacity && snap.depth <= self.capacity);
        self.stack.copy_from_slice(&snap.stack);
        self.top = snap.top;
        self.depth = snap.depth;
    }
}

/// A complete snapshot of a [`Ras`] for checkpointing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RasSnapshot {
    /// The circular buffer contents.
    pub stack: Vec<u64>,
    /// Index of the top-of-stack slot.
    pub top: usize,
    /// Number of valid entries.
    pub depth: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btb_miss_then_hit() {
        let mut btb = Btb::new(6);
        assert_eq!(btb.lookup(0x1000), None);
        btb.update(0x1000, 0x2000);
        assert_eq!(btb.lookup(0x1000), Some(0x2000));
    }

    #[test]
    fn btb_tag_check_rejects_aliases() {
        let mut btb = Btb::new(4); // 16 entries → alias stride 128
        btb.update(0x1000, 0x2000);
        assert_eq!(btb.lookup(0x1000 + 128), None, "alias must not hit");
    }

    #[test]
    fn btb_replacement() {
        let mut btb = Btb::new(4);
        btb.update(0x1000, 0x2000);
        btb.update(0x1000 + 128, 0x3000); // same slot, evicts
        assert_eq!(btb.lookup(0x1000), None);
        assert_eq!(btb.lookup(0x1000 + 128), Some(0x3000));
    }

    #[test]
    fn ras_lifo_order() {
        let mut ras = Ras::new(8);
        ras.push(0x10);
        ras.push(0x20);
        assert_eq!(ras.pop(), Some(0x20));
        assert_eq!(ras.pop(), Some(0x10));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_wraps_on_overflow() {
        let mut ras = Ras::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites 1
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_ras_panics() {
        Ras::new(0);
    }
}
