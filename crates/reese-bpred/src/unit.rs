//! The complete front-end prediction unit used by the pipeline.

use crate::{
    Bimodal, Btb, Combined, DirectionPredictor, Gshare, Ras, RasSnapshot, StaticPredictor, TwoLevel,
};

/// Which direction predictor to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    AlwaysTaken,
    AlwaysNotTaken,
    Bimodal,
    /// The paper's Table 1 choice (McFarling).
    Gshare,
    TwoLevel,
    Combined,
}

/// Configuration of the full branch-prediction unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Direction predictor kind.
    pub kind: PredictorKind,
    /// log2 of the direction table size.
    pub table_bits: u32,
    /// Global/local history length in bits.
    pub history_bits: u32,
    /// log2 of BTB entries.
    pub btb_bits: u32,
    /// Return-address-stack depth.
    pub ras_entries: usize,
}

impl PredictorConfig {
    /// The configuration used in the paper's Table 1: a 4K-entry gshare
    /// with 12 bits of history, a 512-entry BTB, and an 8-deep RAS.
    pub fn paper() -> PredictorConfig {
        PredictorConfig {
            kind: PredictorKind::Gshare,
            table_bits: 12,
            history_bits: 12,
            btb_bits: 9,
            ras_entries: 8,
        }
    }

    /// Same geometry with a different direction predictor (for the
    /// ablation benches).
    pub fn with_kind(mut self, kind: PredictorKind) -> PredictorConfig {
        self.kind = kind;
        self
    }
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig::paper()
    }
}

/// Aggregate prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional-branch direction predictions made.
    pub branch_lookups: u64,
    /// Conditional-branch direction mispredictions.
    pub branch_mispredicts: u64,
    /// Indirect-jump target predictions made.
    pub indirect_lookups: u64,
    /// Indirect-jump target mispredictions.
    pub indirect_mispredicts: u64,
}

impl BranchStats {
    /// Accumulates another interval's counters into this one.
    pub fn merge(&mut self, other: &BranchStats) {
        self.branch_lookups += other.branch_lookups;
        self.branch_mispredicts += other.branch_mispredicts;
        self.indirect_lookups += other.indirect_lookups;
        self.indirect_mispredicts += other.indirect_mispredicts;
    }

    /// Direction misprediction rate in `[0, 1]`.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branch_lookups == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branch_lookups as f64
        }
    }
}

/// The front-end branch unit: a direction predictor plus BTB and RAS.
///
/// # Example
///
/// ```
/// use reese_bpred::{BranchUnit, PredictorConfig};
///
/// let mut bu = BranchUnit::new(PredictorConfig::paper());
/// let guess = bu.predict_branch(0x1000);
/// bu.resolve_branch(0x1000, guess, true);
/// assert_eq!(bu.stats().branch_lookups, 1);
/// ```
pub struct BranchUnit {
    dir: Box<dyn DirectionPredictor + Send>,
    btb: Btb,
    ras: Ras,
    stats: BranchStats,
}

impl std::fmt::Debug for BranchUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BranchUnit")
            .field("direction", &self.dir.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl BranchUnit {
    /// Instantiates the unit from a configuration.
    pub fn new(config: PredictorConfig) -> BranchUnit {
        let dir: Box<dyn DirectionPredictor + Send> = match config.kind {
            PredictorKind::AlwaysTaken => Box::new(StaticPredictor::taken()),
            PredictorKind::AlwaysNotTaken => Box::new(StaticPredictor::not_taken()),
            PredictorKind::Bimodal => Box::new(Bimodal::new(config.table_bits)),
            PredictorKind::Gshare => Box::new(Gshare::new(config.table_bits, config.history_bits)),
            PredictorKind::TwoLevel => Box::new(TwoLevel::new(
                config.table_bits.min(20),
                config.history_bits.min(20),
            )),
            PredictorKind::Combined => {
                Box::new(Combined::new(config.table_bits, config.history_bits))
            }
        };
        BranchUnit {
            dir,
            btb: Btb::new(config.btb_bits),
            ras: Ras::new(config.ras_entries),
            stats: BranchStats::default(),
        }
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict_branch(&mut self, pc: u64) -> bool {
        self.stats.branch_lookups += 1;
        self.dir.predict(pc)
    }

    /// Resolves a conditional branch: trains the predictor and counts a
    /// misprediction if `predicted != actual`.
    pub fn resolve_branch(&mut self, pc: u64, predicted: bool, actual: bool) {
        if predicted != actual {
            self.stats.branch_mispredicts += 1;
        }
        self.dir.update(pc, actual);
    }

    /// Predicts the target of an indirect jump (non-return `jalr`).
    pub fn predict_indirect(&mut self, pc: u64) -> Option<u64> {
        self.stats.indirect_lookups += 1;
        self.btb.lookup(pc)
    }

    /// Resolves an indirect jump, training the BTB.
    pub fn resolve_indirect(&mut self, pc: u64, predicted: Option<u64>, actual: u64) {
        if predicted != Some(actual) {
            self.stats.indirect_mispredicts += 1;
        }
        self.btb.update(pc, actual);
    }

    /// Pushes a call's return address onto the RAS.
    pub fn push_return(&mut self, addr: u64) {
        self.ras.push(addr);
    }

    /// Pops the predicted return address for a return instruction.
    pub fn pop_return(&mut self) -> Option<u64> {
        self.ras.pop()
    }

    /// Name of the active direction predictor.
    pub fn direction_name(&self) -> &'static str {
        self.dir.name()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BranchStats {
        self.stats
    }

    /// Exports the unit's full dynamic state (direction tables, BTB,
    /// RAS, statistics) for checkpointing. The configuration is not
    /// captured; restore into a unit built from the same
    /// [`PredictorConfig`].
    pub fn export_state(&self) -> BranchSnapshot {
        BranchSnapshot {
            dir_words: self.dir.export_words(),
            btb: self.btb.export_entries(),
            ras: self.ras.export_state(),
            stats: self.stats,
        }
    }

    /// Restores state exported by [`BranchUnit::export_state`].
    ///
    /// # Panics
    ///
    /// Panics if any component's snapshot does not match this unit's
    /// geometry.
    pub fn import_state(&mut self, snap: &BranchSnapshot) {
        self.dir.import_words(&snap.dir_words);
        self.btb.import_entries(&snap.btb);
        self.ras.import_state(&snap.ras);
        self.stats = snap.stats;
    }
}

/// A complete snapshot of a [`BranchUnit`] for checkpointing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BranchSnapshot {
    /// Direction-predictor state (see
    /// [`DirectionPredictor::export_words`]).
    pub dir_words: Vec<u64>,
    /// BTB slots.
    pub btb: Vec<Option<(u64, u64)>>,
    /// Return-address stack.
    pub ras: RasSnapshot,
    /// Accumulated statistics.
    pub stats: BranchStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_instantiates() {
        for kind in [
            PredictorKind::AlwaysTaken,
            PredictorKind::AlwaysNotTaken,
            PredictorKind::Bimodal,
            PredictorKind::Gshare,
            PredictorKind::TwoLevel,
            PredictorKind::Combined,
        ] {
            let mut bu = BranchUnit::new(PredictorConfig::paper().with_kind(kind));
            let p = bu.predict_branch(0x1000);
            bu.resolve_branch(0x1000, p, true);
            assert_eq!(bu.stats().branch_lookups, 1);
        }
    }

    #[test]
    fn mispredict_accounting() {
        let mut bu =
            BranchUnit::new(PredictorConfig::paper().with_kind(PredictorKind::AlwaysTaken));
        let p = bu.predict_branch(0x1000);
        assert!(p);
        bu.resolve_branch(0x1000, p, false);
        let p2 = bu.predict_branch(0x1000);
        bu.resolve_branch(0x1000, p2, true);
        assert_eq!(bu.stats().branch_mispredicts, 1);
        assert!((bu.stats().mispredict_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn indirect_flow() {
        let mut bu = BranchUnit::new(PredictorConfig::paper());
        assert_eq!(bu.predict_indirect(0x1000), None);
        bu.resolve_indirect(0x1000, None, 0x2000);
        assert_eq!(bu.predict_indirect(0x1000), Some(0x2000));
        bu.resolve_indirect(0x1000, Some(0x2000), 0x2000);
        assert_eq!(bu.stats().indirect_mispredicts, 1);
        assert_eq!(bu.stats().indirect_lookups, 2);
    }

    #[test]
    fn ras_round_trip() {
        let mut bu = BranchUnit::new(PredictorConfig::paper());
        bu.push_return(0x1008);
        assert_eq!(bu.pop_return(), Some(0x1008));
        assert_eq!(bu.pop_return(), None);
    }

    #[test]
    fn gshare_is_the_paper_default() {
        let bu = BranchUnit::new(PredictorConfig::paper());
        assert_eq!(bu.direction_name(), "gshare");
    }

    #[test]
    fn debug_is_nonempty() {
        let bu = BranchUnit::new(PredictorConfig::paper());
        assert!(format!("{bu:?}").contains("gshare"));
    }
}
