//! Predictor properties: totality, learning guarantees, and stats
//! accounting over seeded random branch streams.

use reese_bpred::{
    Bimodal, BranchUnit, Combined, DirectionPredictor, Gshare, PredictorConfig, PredictorKind,
    TwoLevel,
};
use reese_stats::SplitMix64;

fn all_kinds() -> Vec<PredictorKind> {
    vec![
        PredictorKind::AlwaysTaken,
        PredictorKind::AlwaysNotTaken,
        PredictorKind::Bimodal,
        PredictorKind::Gshare,
        PredictorKind::TwoLevel,
        PredictorKind::Combined,
    ]
}

/// Every predictor accepts any (pc, outcome) stream without panicking
/// and accounts lookups and mispredicts consistently.
#[test]
fn predictors_are_total() {
    let mut rng = SplitMix64::new(10);
    for _ in 0..64 {
        let len = 1 + rng.index(299);
        let stream: Vec<(u64, bool)> = (0..len)
            .map(|_| (rng.range_u64(0, 1_000_000), rng.chance(0.5)))
            .collect();
        for kind in all_kinds() {
            let mut bu = BranchUnit::new(PredictorConfig::paper().with_kind(kind));
            for &(pc, outcome) in &stream {
                let pc = pc & !7; // instruction aligned
                let p = bu.predict_branch(pc);
                bu.resolve_branch(pc, p, outcome);
            }
            let s = bu.stats();
            assert_eq!(s.branch_lookups, stream.len() as u64);
            assert!(s.branch_mispredicts <= s.branch_lookups);
            assert!((0.0..=1.0).contains(&s.mispredict_rate()));
        }
    }
}

/// Any dynamic predictor eventually learns a constant-direction
/// branch perfectly.
#[test]
fn constant_branches_are_learned() {
    let mut rng = SplitMix64::new(11);
    for _ in 0..64 {
        let pc = rng.range_u64(0, 1_000_000) & !7;
        let taken = rng.chance(0.5);
        let dynamic: Vec<Box<dyn DirectionPredictor>> = vec![
            Box::new(Bimodal::new(10)),
            Box::new(Gshare::new(10, 8)),
            Box::new(TwoLevel::new(8, 8)),
            Box::new(Combined::new(10, 8)),
        ];
        for mut p in dynamic {
            // Enough updates for global-history predictors to saturate
            // their history register and then train the steady-state
            // entry (history length 8 + counter hysteresis).
            for _ in 0..24 {
                p.update(pc, taken);
            }
            assert_eq!(p.predict(pc), taken, "{} failed to learn", p.name());
        }
    }
}

/// The BTB through the BranchUnit interface: after training, a
/// stable indirect target is always predicted.
#[test]
fn stable_indirect_targets_learned() {
    let mut rng = SplitMix64::new(12);
    for _ in 0..64 {
        let pc = rng.range_u64(0, 100_000) & !7;
        let target = rng.range_u64(0, 100_000);
        let mut bu = BranchUnit::new(PredictorConfig::paper());
        let first = bu.predict_indirect(pc);
        bu.resolve_indirect(pc, first, target);
        assert_eq!(bu.predict_indirect(pc), Some(target));
    }
}

/// RAS: any sequence of balanced calls (up to the configured depth)
/// predicts all returns exactly, LIFO.
#[test]
fn balanced_calls_return_correctly() {
    let mut rng = SplitMix64::new(13);
    for _ in 0..64 {
        let n = 1 + rng.index(7);
        let addrs: Vec<u64> = (0..n).map(|_| rng.range_u64(0, 1_000_000)).collect();
        let mut bu = BranchUnit::new(PredictorConfig::paper());
        for &a in &addrs {
            bu.push_return(a);
        }
        for &a in addrs.iter().rev() {
            assert_eq!(bu.pop_return(), Some(a));
        }
        assert_eq!(bu.pop_return(), None);
    }
}

/// Gshare must strictly beat bimodal on history-correlated patterns
/// (the reason the paper configures it).
#[test]
fn gshare_beats_bimodal_on_correlated_patterns() {
    // Period-3 pattern T T N: invisible to a 2-bit counter, trivial for
    // 8 bits of history.
    let pattern = [true, true, false];
    let mut g = Gshare::new(12, 8);
    let mut bi = Bimodal::new(12);
    let pc = 0x2000;
    let (mut g_ok, mut b_ok) = (0, 0);
    for i in 0..3000 {
        let outcome = pattern[i % 3];
        if g.predict(pc) == outcome {
            g_ok += 1;
        }
        if bi.predict(pc) == outcome {
            b_ok += 1;
        }
        g.update(pc, outcome);
        bi.update(pc, outcome);
    }
    assert!(g_ok > 2800, "gshare should master the pattern: {g_ok}");
    assert!(
        g_ok > b_ok + 200,
        "gshare {g_ok} must clearly beat bimodal {b_ok}"
    );
}
