//! Property-style snapshot round-trip tests over the whole kernel
//! catalogue, seeded with SplitMix64 so every run exercises the same
//! deterministic cases.
//!
//! The invariant under test is the tentpole guarantee of the checkpoint
//! subsystem: snapshot mid-kernel, serialize, deserialize, restore into
//! a fresh simulator, and the continuation is bit-identical to the
//! uninterrupted run — for every kernel, at arbitrary boundaries.

use reese_ckpt::{checkpoints_at, run_sharded, Checkpoint, CkptError, Scheme, ShardOptions};
use reese_core::ReeseConfig;
use reese_cpu::Emulator;
use reese_pipeline::{PipelineConfig, SchedulerMode};
use reese_stats::SplitMix64;
use reese_workloads::Kernel;

/// Kernel instances small enough that six of them round-trip in a unit
/// test, large enough to touch several memory pages and train the
/// predictors.
const KERNEL_INSTRUCTIONS: u64 = 8_000;

#[test]
fn every_kernel_round_trips_through_a_mid_run_snapshot() {
    let mut rng = SplitMix64::new(0x5EED_C0DE);
    for kernel in Kernel::ALL {
        let prog = kernel.build_for(KERNEL_INSTRUCTIONS);
        let reference = Emulator::new(&prog).run(u64::MAX).unwrap();
        let n = reference.instructions;

        // Three random interior boundaries per kernel.
        for _ in 0..3 {
            let boundary = rng.range_u64(1, n);
            let cks = checkpoints_at(&prog, &[boundary], 64, &PipelineConfig::starting())
                .unwrap_or_else(|e| panic!("{}: fast-forward failed: {e}", kernel.name()));
            let bytes = cks[0].encode();
            let decoded = Checkpoint::decode(&bytes)
                .unwrap_or_else(|e| panic!("{}: decode failed: {e}", kernel.name()));
            assert_eq!(
                decoded,
                cks[0],
                "{}: serialization round trip",
                kernel.name()
            );
            assert_eq!(decoded.instructions, boundary);

            let mut resumed = decoded.restore(&prog);
            let done = resumed.run(u64::MAX).unwrap();
            assert_eq!(done.instructions, n, "{}: instruction count", kernel.name());
            assert_eq!(
                done.state_digest,
                reference.state_digest,
                "{}: architectural state",
                kernel.name()
            );
            assert_eq!(
                resumed.output(),
                reference.output,
                "{}: output",
                kernel.name()
            );
        }
    }
}

#[test]
fn arena_backed_warmup_snapshots_match_the_scan_oracle_on_every_kernel() {
    // `checkpoints_at` warms the pipeline while fast-forwarding, so its
    // frames are produced *through* the scheduler's instruction store:
    // the SoA `InstArena` under `EventDriven`, the original AoS deque
    // under `Scan`. A checkpoint is a function of architectural state
    // only — both layouts must emit byte-identical version-2 frames,
    // and a restore from the arena-produced frame must finish the run
    // bit-identically.
    let mut rng = SplitMix64::new(0xA2E7A);
    for kernel in Kernel::ALL {
        let prog = kernel.build_for(KERNEL_INSTRUCTIONS);
        let reference = Emulator::new(&prog).run(u64::MAX).unwrap();
        let boundary = rng.range_u64(1, reference.instructions);

        let event_cfg = PipelineConfig::starting().with_scheduler(SchedulerMode::EventDriven);
        let scan_cfg = PipelineConfig::starting().with_scheduler(SchedulerMode::Scan);
        let from_arena = checkpoints_at(&prog, &[boundary], 256, &event_cfg).unwrap();
        let from_scan = checkpoints_at(&prog, &[boundary], 256, &scan_cfg).unwrap();
        let bytes = from_arena[0].encode();
        assert_eq!(
            bytes,
            from_scan[0].encode(),
            "{}: frame must not depend on the scheduler's window layout",
            kernel.name()
        );
        assert_eq!(
            u16::from_le_bytes([bytes[4], bytes[5]]),
            reese_ckpt::VERSION,
            "{}: frames carry the bumped wire version",
            kernel.name()
        );

        let decoded = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(decoded, from_arena[0], "{}: round trip", kernel.name());
        let mut resumed = decoded.restore(&prog);
        let done = resumed.run(u64::MAX).unwrap();
        assert_eq!(
            (done.instructions, done.state_digest),
            (reference.instructions, reference.state_digest),
            "{}: arena-produced frame resumes bit-identically",
            kernel.name()
        );
        assert_eq!(resumed.output(), reference.output, "{}", kernel.name());
    }
}

#[test]
fn seeded_corruption_is_always_detected() {
    let prog = Kernel::Lisp.build_for(KERNEL_INSTRUCTIONS);
    let cks = checkpoints_at(
        &prog,
        &[KERNEL_INSTRUCTIONS / 2],
        64,
        &PipelineConfig::starting(),
    )
    .unwrap();
    let good = cks[0].encode();
    assert!(Checkpoint::decode(&good).is_ok());

    let mut rng = SplitMix64::new(0xBAD_CAFE);
    for trial in 0..200 {
        let mut corrupted = good.clone();
        let pos = rng.index(corrupted.len());
        let bit = rng.range_u64(0, 8) as u8;
        corrupted[pos] ^= 1 << bit;
        let err = Checkpoint::decode(&corrupted).expect_err(&format!(
            "trial {trial}: flip at byte {pos} bit {bit} must be caught"
        ));
        // A single bit flip is always within CRC-32's guarantee, unless
        // it lands in the magic or version fields, which are checked
        // first.
        assert!(
            matches!(
                err,
                CkptError::BadCrc { .. } | CkptError::BadMagic | CkptError::UnsupportedVersion(_)
            ),
            "trial {trial}: unexpected error {err:?}"
        );
    }
}

#[test]
fn seeded_truncation_never_panics() {
    let prog = Kernel::Strings.build_for(KERNEL_INSTRUCTIONS);
    let cks = checkpoints_at(
        &prog,
        &[KERNEL_INSTRUCTIONS / 3],
        0,
        &PipelineConfig::starting(),
    )
    .unwrap();
    let good = cks[0].encode();
    let mut rng = SplitMix64::new(0x73_15C47E);
    for _ in 0..100 {
        let cut = rng.index(good.len());
        assert!(Checkpoint::decode(&good[..cut]).is_err());
    }
}

#[test]
fn sharded_reese_run_is_exact_on_a_kernel() {
    let prog = Kernel::Compiler.build_for(KERNEL_INSTRUCTIONS);
    let opts = ShardOptions {
        intervals: 4,
        jobs: 2,
        warmup: 500,
        ..ShardOptions::default()
    };
    let report = run_sharded(&prog, &ReeseConfig::starting(), Scheme::Reese, &opts).unwrap();
    assert!(report.oracle.exact(), "{:?}", report.oracle);
    assert!(report.oracle.cycle_error.unwrap().abs() < 0.25);
}
