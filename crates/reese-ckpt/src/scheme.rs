//! The detection-scheme registry: the single source of truth for
//! scheme names, wire ids, and descriptions.
//!
//! Every consumer — CLI parsing and help text, checkpoint wire frames,
//! the fault campaign, the cross-scheme report — derives its accepted
//! set from [`Scheme::ALL`], so registering a new backend here makes it
//! appear everywhere automatically.

/// A detection scheme: which machine (or program transform) provides
/// soft-error detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// The unprotected out-of-order baseline.
    Baseline,
    /// REESE: R-stream Queue time redundancy.
    Reese,
    /// Dispatch duplication (Franklin's scheme).
    Duplex,
    /// MEEK-style heterogeneous checker cores: committed instruction
    /// groups stream through small in-order checker pipelines behind a
    /// bounded fan-out queue.
    Meek,
    /// Azambuja-style software-only detection: duplicated instructions
    /// into shadow registers plus basic-block signature checks.
    Swift,
}

impl Scheme {
    /// All registered schemes, in report order.
    pub const ALL: [Scheme; 5] = [
        Scheme::Baseline,
        Scheme::Reese,
        Scheme::Duplex,
        Scheme::Meek,
        Scheme::Swift,
    ];

    /// Stable lower-case name for CLI and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "baseline",
            Scheme::Reese => "reese",
            Scheme::Duplex => "duplex",
            Scheme::Meek => "meek",
            Scheme::Swift => "swift",
        }
    }

    /// One-line description for help text and reports.
    pub fn description(self) -> &'static str {
        match self {
            Scheme::Baseline => "unprotected out-of-order core (no detection)",
            Scheme::Reese => "R-stream Queue time redundancy (REESE)",
            Scheme::Duplex => "dispatch duplication (Franklin's scheme)",
            Scheme::Meek => "small in-order checker cores behind a bounded queue",
            Scheme::Swift => "software-only duplication + signature checks",
        }
    }

    /// Parses a [`Scheme::name`].
    pub fn parse(s: &str) -> Option<Scheme> {
        Scheme::ALL.into_iter().find(|k| k.name() == s)
    }

    /// The accepted-name list for CLI error messages, e.g.
    /// `baseline|reese|duplex|meek|swift`.
    pub fn expected() -> String {
        Scheme::ALL.map(Scheme::name).join("|")
    }

    /// Stable wire id for the checkpoint format.
    pub fn id(self) -> u8 {
        match self {
            Scheme::Baseline => 0,
            Scheme::Reese => 1,
            Scheme::Duplex => 2,
            Scheme::Meek => 3,
            Scheme::Swift => 4,
        }
    }

    /// Inverse of [`Scheme::id`].
    pub fn from_id(id: u8) -> Option<Scheme> {
        Scheme::ALL.into_iter().find(|k| k.id() == id)
    }

    /// Whether the sharded interval driver can simulate this scheme
    /// directly. `meek` and `swift` are evaluated through the fault
    /// campaign instead of per-interval timing shards.
    pub fn shardable(self) -> bool {
        matches!(self, Scheme::Baseline | Scheme::Reese | Scheme::Duplex)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for s in Scheme::ALL {
            assert_eq!(Scheme::parse(s.name()), Some(s));
            assert_eq!(Scheme::from_id(s.id()), Some(s));
        }
        assert_eq!(Scheme::parse("emulate"), None);
        assert_eq!(Scheme::from_id(Scheme::ALL.len() as u8), None);
    }

    #[test]
    fn ids_are_dense_and_stable() {
        for (i, s) in Scheme::ALL.into_iter().enumerate() {
            assert_eq!(s.id() as usize, i, "wire ids follow registry order");
        }
    }

    #[test]
    fn expected_list_names_every_scheme() {
        assert_eq!(Scheme::expected(), "baseline|reese|duplex|meek|swift");
    }

    #[test]
    fn only_hardware_interval_machines_are_shardable() {
        let shardable: Vec<&str> = Scheme::ALL
            .into_iter()
            .filter(|s| s.shardable())
            .map(Scheme::name)
            .collect();
        assert_eq!(shardable, ["baseline", "reese", "duplex"]);
    }
}
