//! Checkpoint/replay for the REESE simulator: full simulator state as a
//! first-class serializable artifact, and a sharded driver that splits
//! one long simulation across cores.
//!
//! Three layers:
//!
//! - [`Checkpoint`]: a versioned binary snapshot (magic header, CRC-32
//!   trailer, hand-rolled little-endian layout) of the full functional
//!   machine state — architectural registers, PC, the touched memory
//!   pages, printed output, instruction count — plus an optional warm
//!   section carrying cache, TLB, and branch-predictor state.
//! - [`checkpoints_at`]: the fast functional fast-forward executor that
//!   emits checkpoints at instruction boundaries, with optional
//!   microarchitectural warm-up over the last W instructions before
//!   each boundary.
//! - [`run_sharded`]: the sharded driver. One run is split into K
//!   intervals at checkpoint boundaries; each interval's detailed
//!   timing (baseline, REESE, or duplex) runs on a worker pool; the
//!   per-interval statistics are stitched into one [`ShardReport`]
//!   whose [`ShardOracle`] certifies bit-exact functional results and
//!   measures the cycle-count error against a monolithic run.
//!
//! # Example
//!
//! ```
//! use reese_ckpt::{run_sharded, Scheme, ShardOptions};
//! use reese_core::ReeseConfig;
//!
//! let prog = reese_isa::assemble(
//!     "  li t0, 200\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n",
//! )?;
//! let opts = ShardOptions { intervals: 3, jobs: 2, ..ShardOptions::default() };
//! let report = run_sharded(&prog, &ReeseConfig::starting(), Scheme::Reese, &opts)?;
//! assert!(report.oracle.exact());
//! assert_eq!(report.total_instructions, 402);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod checkpoint;
mod fastforward;
mod scheme;
mod shard;
mod wire;

pub use checkpoint::{Checkpoint, CkptError, MAGIC, VERSION};
pub use fastforward::{
    boundaries, checkpoint_stream, checkpoint_stream_thinned, checkpoints_at, derive_checkpoint,
    warm_checkpoint_at,
};
pub use scheme::Scheme;
pub use shard::{run_sharded, IntervalResult, ShardError, ShardOptions, ShardOracle, ShardReport};
pub use wire::crc32;
