//! Little-endian binary primitives for the checkpoint format.
//!
//! Hand-rolled on purpose: the checkpoint is a long-lived artifact that
//! must stay readable across builds, so the layout is pinned here byte
//! by byte rather than delegated to a serialization library whose
//! defaults could drift.

use crate::CkptError;

/// IEEE 802.3 reflected CRC-32 polynomial.
const CRC32_POLY: u32 = 0xEDB8_8320;

/// Computes the CRC-32 (IEEE, reflected) of `bytes`.
///
/// Bitwise rather than table-driven: checkpoints are written once per
/// interval, not per cycle, and 8 shifts per byte keeps the
/// implementation obviously correct.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = (crc >> 1) ^ (CRC32_POLY & (crc & 1).wrapping_neg());
        }
    }
    !crc
}

/// An append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    pub fn new() -> Encoder {
        Encoder::default()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Encodes a `usize` length prefix; checkpoint sections are bounded
    /// far below `u32::MAX` entries.
    pub fn put_len(&mut self, v: usize) {
        self.put_u32(u32::try_from(v).expect("checkpoint section exceeds u32 length"));
    }

    /// Appends the CRC-32 of everything written so far and returns the
    /// finished frame.
    pub fn finish_with_crc(mut self) -> Vec<u8> {
        let crc = crc32(&self.buf);
        self.put_u32(crc);
        self.buf
    }
}

/// A bounds-checked little-endian reader over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    pub fn new(data: &'a [u8]) -> Decoder<'a> {
        Decoder { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn take_u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    pub fn take_u16(&mut self) -> Result<u16, CkptError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    pub fn take_u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    pub fn take_u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    pub fn take_i64(&mut self) -> Result<i64, CkptError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        self.take(n)
    }

    /// Reads a `u32` length prefix, rejecting prefixes that could not
    /// possibly fit in the remaining bytes (each entry is at least
    /// `min_entry_bytes`) — a cheap guard against allocating gigabytes
    /// off four corrupted bytes.
    pub fn take_len(&mut self, min_entry_bytes: usize) -> Result<usize, CkptError> {
        let n = self.take_u32()? as usize;
        if min_entry_bytes > 0 && n > self.remaining() / min_entry_bytes {
            return Err(CkptError::Truncated);
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut e = Encoder::new();
        e.put_u8(0xAB);
        e.put_u16(0xBEEF);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(0x0123_4567_89AB_CDEF);
        e.put_i64(-42);
        e.put_len(3);
        e.put_bytes(&[1, 2, 3]);
        let frame = e.finish_with_crc();

        let body = &frame[..frame.len() - 4];
        let stored = u32::from_le_bytes(frame[frame.len() - 4..].try_into().unwrap());
        assert_eq!(stored, crc32(body));

        let mut d = Decoder::new(body);
        assert_eq!(d.take_u8().unwrap(), 0xAB);
        assert_eq!(d.take_u16().unwrap(), 0xBEEF);
        assert_eq!(d.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.take_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(d.take_i64().unwrap(), -42);
        let n = d.take_len(1).unwrap();
        assert_eq!(d.take_bytes(n).unwrap(), &[1, 2, 3]);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn decoder_rejects_overrun() {
        let mut d = Decoder::new(&[1, 2, 3]);
        assert_eq!(d.take_u64().unwrap_err(), CkptError::Truncated);
        // A failed read consumes nothing.
        assert_eq!(d.take_u16().unwrap(), 0x0201);
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        let mut e = Encoder::new();
        e.put_u32(u32::MAX);
        let frame = e.finish_with_crc();
        let mut d = Decoder::new(&frame[..frame.len() - 4]);
        assert_eq!(d.take_len(8).unwrap_err(), CkptError::Truncated);
    }
}
