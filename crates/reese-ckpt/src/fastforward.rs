//! Fast functional fast-forward: run the emulator to chosen instruction
//! boundaries and emit [`Checkpoint`]s, optionally warming the caches,
//! TLBs, and branch predictor over the last `warmup` instructions
//! before each boundary.
//!
//! The fast-forward pass is purely functional — no pipeline, no
//! scheduling — so it costs one emulator step per instruction plus, only
//! inside warm windows, one hierarchy access and one predictor update
//! per instruction. Warm windows never overlap (each is clamped at the
//! previous boundary), so at most one set of warm structures is live at
//! a time.

use crate::Checkpoint;
use reese_bpred::{BranchStats, BranchUnit};
use reese_cpu::{EmuError, Emulator, StepInfo};
use reese_isa::{OpKind, Opcode, Program, Reg};
use reese_mem::{CacheStats, MemHierarchy};
use reese_pipeline::{PipelineConfig, WarmState};

/// Evenly spaced interval start points: `i * total / intervals` for
/// `i` in `0..intervals`, deduplicated (short programs can collapse
/// adjacent boundaries). Always starts at 0.
pub fn boundaries(total: u64, intervals: usize) -> Vec<u64> {
    let k = intervals.max(1) as u64;
    let mut out: Vec<u64> = (0..k).map(|i| i * total / k).collect();
    out.dedup();
    out
}

/// Runs the program functionally, capturing a [`Checkpoint`] at each of
/// the given instruction `boundaries` (which must be strictly ascending
/// and reachable before the program halts). With `warmup > 0`, the last
/// `warmup` instructions before each boundary — clamped at the previous
/// boundary — additionally drive a fresh cache hierarchy and branch
/// predictor whose state is attached to that boundary's checkpoint.
///
/// The warm structures mirror what the detailed front end and execution
/// stages would have touched: an instruction-cache access per fetch, a
/// data access per load/store, and a predict-then-train pass per
/// control instruction. Their statistics are scrubbed before attachment
/// so a restored interval reports only its own activity.
///
/// # Errors
///
/// Returns [`EmuError`] if the program leaves its text segment.
///
/// # Panics
///
/// Panics if `boundaries` is not strictly ascending or extends past the
/// program's halt.
pub fn checkpoints_at(
    program: &Program,
    boundaries: &[u64],
    warmup: u64,
    pipeline: &PipelineConfig,
) -> Result<Vec<Checkpoint>, EmuError> {
    assert!(
        boundaries.windows(2).all(|w| w[0] < w[1]),
        "checkpoint boundaries must be strictly ascending"
    );
    let mut emu = Emulator::new(program);
    let inst_size = program.inst_size();
    let mut out = Vec::with_capacity(boundaries.len());
    let mut warm_active: Option<(MemHierarchy, BranchUnit)> = None;
    let mut next = 0;
    while next < boundaries.len() {
        let executed = emu.instructions();
        if boundaries[next] == executed {
            let warm = warm_active.take().map(|(hierarchy, branch)| {
                scrubbed(WarmState {
                    hierarchy: hierarchy.export_state(),
                    branch: branch.export_state(),
                })
            });
            out.push(Checkpoint::capture(&emu, warm));
            next += 1;
            continue;
        }
        assert!(
            emu.exit_code().is_none(),
            "checkpoint boundary {} lies beyond the program's halt",
            boundaries[next]
        );
        let target = boundaries[next];
        let window_floor = if next == 0 { 0 } else { boundaries[next - 1] };
        if warmup > 0
            && warm_active.is_none()
            && executed >= target.saturating_sub(warmup).max(window_floor)
        {
            warm_active = Some((
                MemHierarchy::new(pipeline.hierarchy.clone()),
                BranchUnit::new(pipeline.predictor.clone()),
            ));
        }
        let info = emu.step()?;
        if let Some((hierarchy, branch)) = &mut warm_active {
            warm_step(hierarchy, branch, &info, inst_size);
        }
    }
    Ok(out)
}

/// Runs the program functionally to its halt (or to `max_instructions`
/// committed), capturing a warm [`Checkpoint`] every `every`
/// instructions starting at 0. The sweep doubles as the campaign's
/// reference pass: the returned count is the program's dynamic length
/// under the same budget `Emulator::run` would apply, so no separate
/// reference emulation is needed.
///
/// Unlike [`checkpoints_at`]'s bounded warm windows, the warm
/// structures here run continuously from instruction 0 and every
/// boundary past 0 snapshots their **full history**: replay-anchored
/// fault trials compare cycle-exact deltas against a clean replay from
/// the same state, so the restored caches, TLBs, and predictor must
/// carry everything the program has touched, not just the last
/// interval — a large L2 remembers lines from far before any bounded
/// window. No checkpoint is captured at the halt/budget point itself —
/// a suffix starting there would have nothing to run.
///
/// # Errors
///
/// Returns [`EmuError`] if the program leaves its text segment.
///
/// # Panics
///
/// Panics if `every` is 0.
pub fn checkpoint_stream(
    program: &Program,
    every: u64,
    pipeline: &PipelineConfig,
    max_instructions: u64,
) -> Result<(Vec<Checkpoint>, u64), EmuError> {
    let (out, stride, len) =
        checkpoint_stream_thinned(program, every, pipeline, max_instructions, usize::MAX)?;
    debug_assert_eq!(stride, every, "an unbounded stream never thins");
    Ok((out, len))
}

/// [`checkpoint_stream`] with a bounded resident set: whenever the
/// sweep would hold more than `max_resident` checkpoints it drops every
/// other one and doubles the capture stride, so an arbitrarily long
/// program costs a bounded number of captures (each capture clones the
/// touched pages plus the full cache/TLB/predictor tables — on long
/// programs that, not the emulation, dominates the sweep).
///
/// Returns the kept checkpoints (at instruction `i * stride` for
/// consecutive `i` from 0), the final stride (`every * 2^j` for some
/// `j >= 0`), and the dynamic length. Any finer-grained boundary can be
/// recovered afterwards with [`derive_checkpoint`] from the nearest
/// kept checkpoint at or below it.
///
/// # Errors
///
/// Returns [`EmuError`] if the program leaves its text segment.
///
/// # Panics
///
/// Panics if `every` is 0 or `max_resident < 2`.
pub fn checkpoint_stream_thinned(
    program: &Program,
    every: u64,
    pipeline: &PipelineConfig,
    max_instructions: u64,
    max_resident: usize,
) -> Result<(Vec<Checkpoint>, u64, u64), EmuError> {
    assert!(every > 0, "checkpoint interval must be at least 1");
    assert!(max_resident >= 2, "need at least two resident checkpoints");
    let mut emu = Emulator::new(program);
    let inst_size = program.inst_size();
    let mut out: Vec<Checkpoint> = Vec::new();
    let mut hierarchy = MemHierarchy::new(pipeline.hierarchy.clone());
    let mut branch = BranchUnit::new(pipeline.predictor.clone());
    let mut stride = every;
    let mut next_boundary = 0u64;
    loop {
        let executed = emu.instructions();
        if emu.exit_code().is_some() || executed >= max_instructions {
            break;
        }
        if executed == next_boundary {
            if out.len() == max_resident {
                // Thin: keep the even-indexed checkpoints (still a
                // consecutive grid under the doubled stride).
                let mut i = 0;
                out.retain(|_| {
                    i += 1;
                    (i - 1) % 2 == 0
                });
                stride *= 2;
            }
            // After a thin the current boundary may fall off the new
            // grid — it would have been a dropped odd slot.
            if executed.is_multiple_of(stride) {
                let warm = (executed > 0).then(|| {
                    scrubbed(WarmState {
                        hierarchy: hierarchy.export_state(),
                        branch: branch.export_state(),
                    })
                });
                out.push(Checkpoint::capture(&emu, warm));
            }
            next_boundary = (executed / stride + 1) * stride;
        }
        let info = emu.step()?;
        warm_step(&mut hierarchy, &mut branch, &info, inst_size);
    }
    Ok((out, stride, emu.instructions()))
}

/// Re-derives the continuous-warm checkpoint at `boundary` from an
/// earlier sweep checkpoint, bit-identical to what the sweep itself
/// would have captured there: the base carries the full
/// architectural-plus-warm history of instructions `0..base`, and the
/// snapshots are lossless, so continuing the same emulator and warm
/// structures reproduces the sweep's state exactly. This is how a
/// campaign recovers the handful of anchor boundaries its trials
/// actually use from a thinned (coarse-stride) sweep without paying a
/// capture at every fine boundary.
///
/// # Errors
///
/// Returns [`EmuError`] if the program leaves its text segment.
///
/// # Panics
///
/// Panics if `boundary` precedes the base checkpoint or lies beyond the
/// program's halt.
pub fn derive_checkpoint(
    program: &Program,
    base: &Checkpoint,
    boundary: u64,
    pipeline: &PipelineConfig,
) -> Result<Checkpoint, EmuError> {
    assert!(
        boundary >= base.instructions,
        "boundary {boundary} precedes the base checkpoint at {}",
        base.instructions
    );
    if boundary == base.instructions {
        return Ok(base.clone());
    }
    let mut emu = base.restore(program);
    let inst_size = program.inst_size();
    let mut hierarchy = MemHierarchy::new(pipeline.hierarchy.clone());
    let mut branch = BranchUnit::new(pipeline.predictor.clone());
    if let Some(w) = &base.warm {
        hierarchy.import_state(&w.hierarchy);
        branch.import_state(&w.branch);
    }
    while emu.instructions() < boundary {
        assert!(
            emu.exit_code().is_none(),
            "checkpoint boundary {boundary} lies beyond the program's halt"
        );
        let info = emu.step()?;
        warm_step(&mut hierarchy, &mut branch, &info, inst_size);
    }
    let warm = (boundary > 0).then(|| {
        scrubbed(WarmState {
            hierarchy: hierarchy.export_state(),
            branch: branch.export_state(),
        })
    });
    Ok(Checkpoint::capture(&emu, warm))
}

/// Captures the single continuous-warm checkpoint at `boundary`,
/// bit-identical to the one [`checkpoint_stream`] produces there: the
/// emulator and the warm structures run from instruction 0. This is the
/// from-scratch arm of the campaign trial oracle — it shares no state
/// with any cached sweep, so agreement between the two proves the
/// sweep's reuse machinery faithful.
///
/// # Errors
///
/// Returns [`EmuError`] if the program leaves its text segment.
///
/// # Panics
///
/// Panics if `boundary` lies beyond the program's halt.
pub fn warm_checkpoint_at(
    program: &Program,
    boundary: u64,
    pipeline: &PipelineConfig,
) -> Result<Checkpoint, EmuError> {
    let mut emu = Emulator::new(program);
    let inst_size = program.inst_size();
    let mut hierarchy = MemHierarchy::new(pipeline.hierarchy.clone());
    let mut branch = BranchUnit::new(pipeline.predictor.clone());
    while emu.instructions() < boundary {
        assert!(
            emu.exit_code().is_none(),
            "checkpoint boundary {boundary} lies beyond the program's halt"
        );
        let info = emu.step()?;
        warm_step(&mut hierarchy, &mut branch, &info, inst_size);
    }
    let warm = (boundary > 0).then(|| {
        scrubbed(WarmState {
            hierarchy: hierarchy.export_state(),
            branch: branch.export_state(),
        })
    });
    Ok(Checkpoint::capture(&emu, warm))
}

/// Drives the warm structures exactly as the detailed machine would for
/// one committed instruction: icache fetch, dcache access, and the
/// front end's predict-then-resolve sequence for control flow.
fn warm_step(
    hierarchy: &mut MemHierarchy,
    branch: &mut BranchUnit,
    info: &StepInfo,
    inst_size: u64,
) {
    hierarchy.access_inst(info.pc);
    if let Some(mem) = info.mem {
        hierarchy.access_data(mem.addr, mem.is_store);
    }
    let instr = &info.instr;
    match instr.op.kind() {
        OpKind::Branch => {
            let predicted = branch.predict_branch(info.pc);
            branch.resolve_branch(info.pc, predicted, info.taken);
        }
        OpKind::Jump => {
            if instr.op == Opcode::Jal {
                if instr.rd == Reg::RA {
                    branch.push_return(info.pc + inst_size);
                }
            } else {
                let is_return = instr.rd.is_zero() && instr.rs1 == Reg::RA;
                let predicted = if is_return {
                    branch.pop_return()
                } else {
                    branch.predict_indirect(info.pc)
                };
                if instr.rd == Reg::RA {
                    branch.push_return(info.pc + inst_size);
                }
                branch.resolve_indirect(info.pc, predicted, info.next_pc);
            }
        }
        _ => {}
    }
}

/// Zeroes the statistics carried inside a warm snapshot, keeping the
/// tactical state (lines, LRU ticks, counters, stacks). A restored
/// interval then reports only the accesses it performs itself.
fn scrubbed(mut warm: WarmState) -> WarmState {
    warm.hierarchy.l1i.stats = CacheStats::default();
    warm.hierarchy.l1d.stats = CacheStats::default();
    warm.hierarchy.l2.stats = CacheStats::default();
    for tlb in [&mut warm.hierarchy.itlb, &mut warm.hierarchy.dtlb] {
        tlb.hits = 0;
        tlb.misses = 0;
    }
    warm.hierarchy.prefetches_issued = 0;
    warm.branch.stats = BranchStats::default();
    warm
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_isa::assemble;

    const PROG: &str = "  li s0, 60\n  la a0, buf\nloop: andi t0, s0, 31\n  slli t1, t0, 3\n  \
                        add t2, a0, t1\n  sd s0, 0(t2)\n  ld t3, 0(t2)\n  addi s0, s0, -1\n  \
                        bnez s0, loop\n  halt\n  .data\nbuf: .space 256\n";

    #[test]
    fn boundaries_are_even_and_deduplicated() {
        assert_eq!(boundaries(100, 4), vec![0, 25, 50, 75]);
        assert_eq!(boundaries(7, 3), vec![0, 2, 4]);
        assert_eq!(boundaries(2, 8), vec![0, 1]);
        assert_eq!(boundaries(0, 4), vec![0]);
    }

    #[test]
    fn checkpoints_land_on_their_boundaries() {
        let prog = assemble(PROG).unwrap();
        let n = Emulator::new(&prog).run(u64::MAX).unwrap().instructions;
        let bs = boundaries(n, 4);
        let cks = checkpoints_at(&prog, &bs, 0, &PipelineConfig::starting()).unwrap();
        assert_eq!(cks.len(), bs.len());
        for (ck, &b) in cks.iter().zip(&bs) {
            assert_eq!(ck.instructions, b);
            assert!(ck.warm.is_none());
        }
    }

    #[test]
    fn restored_checkpoint_continues_bit_identically() {
        let prog = assemble(PROG).unwrap();
        let reference = Emulator::new(&prog).run(u64::MAX).unwrap();
        let bs = boundaries(reference.instructions, 3);
        let cks = checkpoints_at(&prog, &bs, 16, &PipelineConfig::starting()).unwrap();
        for ck in &cks {
            let mut emu = ck.restore(&prog);
            let done = emu.run(u64::MAX).unwrap();
            assert_eq!(done.instructions, reference.instructions);
            assert_eq!(done.state_digest, reference.state_digest);
            assert_eq!(emu.output(), reference.output);
        }
    }

    #[test]
    fn warmup_attaches_scrubbed_state_to_later_boundaries() {
        let prog = assemble(PROG).unwrap();
        let n = Emulator::new(&prog).run(u64::MAX).unwrap().instructions;
        let bs = boundaries(n, 3);
        let cks = checkpoints_at(&prog, &bs, 32, &PipelineConfig::starting()).unwrap();
        // Boundary 0 has an empty window; later boundaries carry state.
        assert!(cks[0].warm.is_none());
        for ck in &cks[1..] {
            let warm = ck.warm.as_ref().expect("warm state present");
            assert!(
                warm.hierarchy.l1d.lines.iter().any(|l| l.valid),
                "warm-up must have touched the data cache"
            );
            assert_eq!(warm.hierarchy.l1d.stats, CacheStats::default());
            assert_eq!(warm.branch.stats, BranchStats::default());
            assert!(
                warm.branch.dir_words.iter().any(|&w| w != 0),
                "warm-up must have trained the direction predictor"
            );
        }
    }

    #[test]
    fn stream_matches_checkpoints_at_on_shared_boundaries() {
        let prog = assemble(PROG).unwrap();
        let n = Emulator::new(&prog).run(u64::MAX).unwrap().instructions;
        let every = 64;
        let (stream, len) =
            checkpoint_stream(&prog, every, &PipelineConfig::starting(), u64::MAX).unwrap();
        assert_eq!(len, n, "the sweep doubles as the reference pass");
        let expected: Vec<u64> = (0..n).step_by(every as usize).collect();
        let got: Vec<u64> = stream.iter().map(|c| c.instructions).collect();
        assert_eq!(got, expected);
        let batch = checkpoints_at(&prog, &expected, every, &PipelineConfig::starting()).unwrap();
        for (s, b) in stream.iter().zip(&batch) {
            assert_eq!(s.instructions, b.instructions);
            assert_eq!(s.arch_digest(), b.arch_digest());
            assert_eq!(s.warm.is_some(), b.warm.is_some());
        }
        // Continuous warm-up carries full history: a restored stream
        // checkpoint finishes the program bit-identically.
        let reference = Emulator::new(&prog).run(u64::MAX).unwrap();
        for ck in &stream {
            let mut emu = ck.restore(&prog);
            let done = emu.run(u64::MAX).unwrap();
            assert_eq!(done.state_digest, reference.state_digest);
        }
    }

    #[test]
    fn single_boundary_capture_equals_stream_checkpoint() {
        // The campaign oracle depends on this identity: the Full arm's
        // per-trial from-scratch capture must equal the Replay arm's
        // swept checkpoint at the same boundary, warm state included.
        let prog = assemble(PROG).unwrap();
        let (stream, _) =
            checkpoint_stream(&prog, 96, &PipelineConfig::starting(), u64::MAX).unwrap();
        assert!(stream.len() > 2, "need several boundaries");
        for ck in &stream {
            let single =
                warm_checkpoint_at(&prog, ck.instructions, &PipelineConfig::starting()).unwrap();
            assert_eq!(&single, ck, "boundary {}", ck.instructions);
        }
    }

    #[test]
    fn thinned_stream_is_a_strided_subset_of_the_plain_stream() {
        let prog = assemble(PROG).unwrap();
        let every = 16;
        let (plain, _) =
            checkpoint_stream(&prog, every, &PipelineConfig::starting(), u64::MAX).unwrap();
        assert!(plain.len() > 8, "need enough boundaries to force thinning");
        let (thinned, stride, len) =
            checkpoint_stream_thinned(&prog, every, &PipelineConfig::starting(), u64::MAX, 4)
                .unwrap();
        assert!(thinned.len() <= 4);
        assert!(stride > every, "thinning must have engaged");
        assert_eq!(stride % every, 0, "stride doubles from the base interval");
        let n = Emulator::new(&prog).run(u64::MAX).unwrap().instructions;
        assert_eq!(len, n, "the thinned sweep still measures the length");
        let factor = (stride / every) as usize;
        for (i, ck) in thinned.iter().enumerate() {
            assert_eq!(ck.instructions, i as u64 * stride, "consecutive grid");
            assert_eq!(ck, &plain[i * factor], "boundary {}", ck.instructions);
        }
    }

    #[test]
    fn derived_checkpoint_matches_continuous_sweep() {
        // The linchpin of thinned-sweep replay: restoring an earlier
        // sweep checkpoint and warm-stepping forward must reproduce the
        // sweep's own checkpoint at the target boundary, bit for bit.
        let prog = assemble(PROG).unwrap();
        let (stream, _) =
            checkpoint_stream(&prog, 48, &PipelineConfig::starting(), u64::MAX).unwrap();
        assert!(stream.len() > 3, "need several boundaries");
        for (i, base) in stream.iter().enumerate() {
            for target in &stream[i..] {
                let derived = derive_checkpoint(
                    &prog,
                    base,
                    target.instructions,
                    &PipelineConfig::starting(),
                )
                .unwrap();
                assert_eq!(
                    &derived, target,
                    "derive {} -> {}",
                    base.instructions, target.instructions
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "precedes the base checkpoint")]
    fn deriving_backwards_panics() {
        let prog = assemble(PROG).unwrap();
        let (stream, _) =
            checkpoint_stream(&prog, 48, &PipelineConfig::starting(), u64::MAX).unwrap();
        let _ = derive_checkpoint(&prog, &stream[1], 0, &PipelineConfig::starting());
    }

    #[test]
    #[should_panic(expected = "beyond the program's halt")]
    fn single_boundary_capture_past_halt_panics() {
        let prog = assemble("  halt\n").unwrap();
        let _ = warm_checkpoint_at(&prog, 100, &PipelineConfig::starting());
    }

    #[test]
    fn stream_respects_instruction_budget() {
        let prog = assemble(PROG).unwrap();
        let (stream, len) = checkpoint_stream(&prog, 32, &PipelineConfig::starting(), 100).unwrap();
        assert_eq!(len, 100);
        assert!(stream.iter().all(|c| c.instructions < 100));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_stream_interval_panics() {
        let prog = assemble("  halt\n").unwrap();
        let _ = checkpoint_stream(&prog, 0, &PipelineConfig::starting(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unordered_boundaries_panic() {
        let prog = assemble("  halt\n").unwrap();
        let _ = checkpoints_at(&prog, &[5, 3], 0, &PipelineConfig::starting());
    }
}
