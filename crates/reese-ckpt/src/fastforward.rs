//! Fast functional fast-forward: run the emulator to chosen instruction
//! boundaries and emit [`Checkpoint`]s, optionally warming the caches,
//! TLBs, and branch predictor over the last `warmup` instructions
//! before each boundary.
//!
//! The fast-forward pass is purely functional — no pipeline, no
//! scheduling — so it costs one emulator step per instruction plus, only
//! inside warm windows, one hierarchy access and one predictor update
//! per instruction. Warm windows never overlap (each is clamped at the
//! previous boundary), so at most one set of warm structures is live at
//! a time.

use crate::Checkpoint;
use reese_bpred::{BranchStats, BranchUnit};
use reese_cpu::{EmuError, Emulator, StepInfo};
use reese_isa::{Instr, OpKind, Opcode, Program, Reg};
use reese_mem::{CacheStats, MemHierarchy};
use reese_pipeline::{PipelineConfig, WarmState};

/// Evenly spaced interval start points: `i * total / intervals` for
/// `i` in `0..intervals`, deduplicated (short programs can collapse
/// adjacent boundaries). Always starts at 0.
pub fn boundaries(total: u64, intervals: usize) -> Vec<u64> {
    let k = intervals.max(1) as u64;
    let mut out: Vec<u64> = (0..k).map(|i| i * total / k).collect();
    out.dedup();
    out
}

/// Runs the program functionally, capturing a [`Checkpoint`] at each of
/// the given instruction `boundaries` (which must be strictly ascending
/// and reachable before the program halts). With `warmup > 0`, the last
/// `warmup` instructions before each boundary — clamped at the previous
/// boundary — additionally drive a fresh cache hierarchy and branch
/// predictor whose state is attached to that boundary's checkpoint.
///
/// The warm structures mirror what the detailed front end and execution
/// stages would have touched: an instruction-cache access per fetch, a
/// data access per load/store, and a predict-then-train pass per
/// control instruction. Their statistics are scrubbed before attachment
/// so a restored interval reports only its own activity.
///
/// # Errors
///
/// Returns [`EmuError`] if the program leaves its text segment.
///
/// # Panics
///
/// Panics if `boundaries` is not strictly ascending or extends past the
/// program's halt.
pub fn checkpoints_at(
    program: &Program,
    boundaries: &[u64],
    warmup: u64,
    pipeline: &PipelineConfig,
) -> Result<Vec<Checkpoint>, EmuError> {
    assert!(
        boundaries.windows(2).all(|w| w[0] < w[1]),
        "checkpoint boundaries must be strictly ascending"
    );
    let mut emu = Emulator::new(program);
    let mut out = Vec::with_capacity(boundaries.len());
    let mut warm_active: Option<(MemHierarchy, BranchUnit)> = None;
    let mut next = 0;
    while next < boundaries.len() {
        let executed = emu.instructions();
        if boundaries[next] == executed {
            let warm = warm_active.take().map(|(hierarchy, branch)| {
                scrubbed(WarmState {
                    hierarchy: hierarchy.export_state(),
                    branch: branch.export_state(),
                })
            });
            out.push(Checkpoint::capture(&emu, warm));
            next += 1;
            continue;
        }
        assert!(
            emu.exit_code().is_none(),
            "checkpoint boundary {} lies beyond the program's halt",
            boundaries[next]
        );
        let target = boundaries[next];
        let window_floor = if next == 0 { 0 } else { boundaries[next - 1] };
        if warmup > 0
            && warm_active.is_none()
            && executed >= target.saturating_sub(warmup).max(window_floor)
        {
            warm_active = Some((
                MemHierarchy::new(pipeline.hierarchy.clone()),
                BranchUnit::new(pipeline.predictor.clone()),
            ));
        }
        let info = emu.step()?;
        if let Some((hierarchy, branch)) = &mut warm_active {
            warm_step(hierarchy, branch, &info);
        }
    }
    Ok(out)
}

/// Drives the warm structures exactly as the detailed machine would for
/// one committed instruction: icache fetch, dcache access, and the
/// front end's predict-then-resolve sequence for control flow.
fn warm_step(hierarchy: &mut MemHierarchy, branch: &mut BranchUnit, info: &StepInfo) {
    hierarchy.access_inst(info.pc);
    if let Some(mem) = info.mem {
        hierarchy.access_data(mem.addr, mem.is_store);
    }
    let instr = &info.instr;
    match instr.op.kind() {
        OpKind::Branch => {
            let predicted = branch.predict_branch(info.pc);
            branch.resolve_branch(info.pc, predicted, info.taken);
        }
        OpKind::Jump => {
            if instr.op == Opcode::Jal {
                if instr.rd == Reg::RA {
                    branch.push_return(info.pc + Instr::SIZE);
                }
            } else {
                let is_return = instr.rd.is_zero() && instr.rs1 == Reg::RA;
                let predicted = if is_return {
                    branch.pop_return()
                } else {
                    branch.predict_indirect(info.pc)
                };
                if instr.rd == Reg::RA {
                    branch.push_return(info.pc + Instr::SIZE);
                }
                branch.resolve_indirect(info.pc, predicted, info.next_pc);
            }
        }
        _ => {}
    }
}

/// Zeroes the statistics carried inside a warm snapshot, keeping the
/// tactical state (lines, LRU ticks, counters, stacks). A restored
/// interval then reports only the accesses it performs itself.
fn scrubbed(mut warm: WarmState) -> WarmState {
    warm.hierarchy.l1i.stats = CacheStats::default();
    warm.hierarchy.l1d.stats = CacheStats::default();
    warm.hierarchy.l2.stats = CacheStats::default();
    for tlb in [&mut warm.hierarchy.itlb, &mut warm.hierarchy.dtlb] {
        tlb.hits = 0;
        tlb.misses = 0;
    }
    warm.hierarchy.prefetches_issued = 0;
    warm.branch.stats = BranchStats::default();
    warm
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_isa::assemble;

    const PROG: &str = "  li s0, 60\n  la a0, buf\nloop: andi t0, s0, 31\n  slli t1, t0, 3\n  \
                        add t2, a0, t1\n  sd s0, 0(t2)\n  ld t3, 0(t2)\n  addi s0, s0, -1\n  \
                        bnez s0, loop\n  halt\n  .data\nbuf: .space 256\n";

    #[test]
    fn boundaries_are_even_and_deduplicated() {
        assert_eq!(boundaries(100, 4), vec![0, 25, 50, 75]);
        assert_eq!(boundaries(7, 3), vec![0, 2, 4]);
        assert_eq!(boundaries(2, 8), vec![0, 1]);
        assert_eq!(boundaries(0, 4), vec![0]);
    }

    #[test]
    fn checkpoints_land_on_their_boundaries() {
        let prog = assemble(PROG).unwrap();
        let n = Emulator::new(&prog).run(u64::MAX).unwrap().instructions;
        let bs = boundaries(n, 4);
        let cks = checkpoints_at(&prog, &bs, 0, &PipelineConfig::starting()).unwrap();
        assert_eq!(cks.len(), bs.len());
        for (ck, &b) in cks.iter().zip(&bs) {
            assert_eq!(ck.instructions, b);
            assert!(ck.warm.is_none());
        }
    }

    #[test]
    fn restored_checkpoint_continues_bit_identically() {
        let prog = assemble(PROG).unwrap();
        let reference = Emulator::new(&prog).run(u64::MAX).unwrap();
        let bs = boundaries(reference.instructions, 3);
        let cks = checkpoints_at(&prog, &bs, 16, &PipelineConfig::starting()).unwrap();
        for ck in &cks {
            let mut emu = ck.restore(&prog);
            let done = emu.run(u64::MAX).unwrap();
            assert_eq!(done.instructions, reference.instructions);
            assert_eq!(done.state_digest, reference.state_digest);
            assert_eq!(emu.output(), reference.output);
        }
    }

    #[test]
    fn warmup_attaches_scrubbed_state_to_later_boundaries() {
        let prog = assemble(PROG).unwrap();
        let n = Emulator::new(&prog).run(u64::MAX).unwrap().instructions;
        let bs = boundaries(n, 3);
        let cks = checkpoints_at(&prog, &bs, 32, &PipelineConfig::starting()).unwrap();
        // Boundary 0 has an empty window; later boundaries carry state.
        assert!(cks[0].warm.is_none());
        for ck in &cks[1..] {
            let warm = ck.warm.as_ref().expect("warm state present");
            assert!(
                warm.hierarchy.l1d.lines.iter().any(|l| l.valid),
                "warm-up must have touched the data cache"
            );
            assert_eq!(warm.hierarchy.l1d.stats, CacheStats::default());
            assert_eq!(warm.branch.stats, BranchStats::default());
            assert!(
                warm.branch.dir_words.iter().any(|&w| w != 0),
                "warm-up must have trained the direction predictor"
            );
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unordered_boundaries_panic() {
        let prog = assemble("  halt\n").unwrap();
        let _ = checkpoints_at(&prog, &[5, 3], 0, &PipelineConfig::starting());
    }
}
