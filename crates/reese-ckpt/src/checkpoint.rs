//! The versioned binary checkpoint: full functional simulator state,
//! plus an optional microarchitectural warm section.
//!
//! # Format (version 4)
//!
//! All integers little-endian. The file is one frame:
//!
//! ```text
//! magic      4 bytes  b"RCKP"
//! version    u16      4
//! flags      u16      bit0 = warm section present, bit1 = halted
//! instructions u64    dynamic instructions executed so far
//! pc         u64
//! regs       u32 count, then count x u64
//! digest     u64      FNV-1a over (regs, pc) — architectural self-check
//! scheme     u8       detection scheme the snapshot was captured under
//! isa        u8       instruction set the program executes under
//! exit_code  u64      only if flags bit1
//! output     u32 count, then count x i64   (values printed so far)
//! pages      u32 count, then count x (u64 page_number, 4096 bytes)
//! warm       only if flags bit0:
//!   l1i, l1d, l2   each: u32 line count, count x (u64 tag, u8 v|d, u64 lru),
//!                  u64 tick, u64 accesses, u64 hits, u64 misses, u64 writebacks
//!   itlb, dtlb     each: u32 count, count x (u64 vpn, u64 lru),
//!                  u64 tick, u64 hits, u64 misses
//!   prefetches     u64
//!   direction      u32 count, count x u64 packed 2-bit counters
//!   btb            u32 count, count x (u8 present, u64 tag, u64 target)
//!   ras            u32 stack len, len x u64, u64 top, u64 depth
//!   branch stats   4 x u64
//! crc        u32      CRC-32 (IEEE) of every preceding byte
//! ```
//!
//! Only touched memory pages are stored, so checkpoint size scales with
//! the program's working set, not the address space.
//!
//! Version 2 added the architectural digest (a semantic complement to
//! the byte-level CRC: it travels with the snapshot into any future
//! container that re-frames the bytes). Version 3 added the capturing
//! [`Scheme`] id so a snapshot cannot be silently restored under a
//! different detection scheme — [`Checkpoint::decode_for`] enforces the
//! match. Version 4 added the [`IsaId`] stamp: functional state is only
//! meaningful under the ISA that produced it (4- vs 8-byte pcs, 32- vs
//! 64-bit register contents), so `decode_for` likewise refuses a frame
//! stamped with a different ISA. Version-3 frames, which predate the
//! stamp, still decode and are treated as [`IsaId::Native`]; version-1
//! and version-2 frames are rejected with
//! [`CkptError::UnsupportedVersion`] rather than read.

use crate::wire::{crc32, Decoder, Encoder};
use crate::Scheme;
use reese_bpred::{BranchSnapshot, BranchStats, RasSnapshot};
use reese_cpu::{ArchState, Emulator};
use reese_isa::{IsaId, Program, NUM_REGS};
use reese_mem::{CacheSnapshot, CacheStats, LineState, Memory, TlbSnapshot, PAGE_SIZE};
use reese_pipeline::WarmState;
use std::fmt;

/// File magic: "Reese ChecKPoint".
pub const MAGIC: [u8; 4] = *b"RCKP";

/// Current format version.
pub const VERSION: u16 = 4;

/// Oldest format version [`Checkpoint::decode`] still reads. Version-3
/// frames lack the ISA byte and decode as [`IsaId::Native`].
pub const MIN_VERSION: u16 = 3;

const FLAG_WARM: u16 = 1 << 0;
const FLAG_HALTED: u16 = 1 << 1;

/// Why a checkpoint failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// The version field names a format this build cannot read.
    UnsupportedVersion(u16),
    /// The data ended before the structure it promised.
    Truncated,
    /// The trailing CRC does not match the content.
    BadCrc {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the content.
        computed: u32,
    },
    /// Structurally well-formed bytes with an impossible value.
    Malformed(&'static str),
    /// The snapshot was captured under a different detection scheme
    /// than the one asking to restore it.
    SchemeMismatch {
        /// Scheme recorded in the frame.
        stored: Scheme,
        /// Scheme the caller is restoring under.
        requested: Scheme,
    },
    /// The snapshot was captured under a different instruction set than
    /// the program it is being restored against.
    IsaMismatch {
        /// ISA recorded in the frame.
        stored: IsaId,
        /// ISA the caller is restoring under.
        requested: IsaId,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "not a REESE checkpoint (bad magic)"),
            CkptError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (this build reads {VERSION})"
                )
            }
            CkptError::Truncated => write!(f, "checkpoint truncated"),
            CkptError::BadCrc { stored, computed } => write!(
                f,
                "checkpoint CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            CkptError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CkptError::SchemeMismatch { stored, requested } => write!(
                f,
                "checkpoint was captured under scheme `{stored}` but is being restored under `{requested}`"
            ),
            CkptError::IsaMismatch { stored, requested } => write!(
                f,
                "checkpoint was captured under ISA `{}` but is being restored under `{}`",
                stored.name(),
                requested.name()
            ),
        }
    }
}

impl std::error::Error for CkptError {}

/// A complete functional snapshot of the simulated machine at an
/// instruction boundary, with optional cache/TLB/branch-predictor warm
/// state for resuming detailed timing simulation.
///
/// The program itself is *not* stored: it is the deterministic input
/// that produced this state, and [`Checkpoint::restore`] takes it as an
/// argument.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Dynamic instructions executed before this boundary.
    pub instructions: u64,
    /// Program counter.
    pub pc: u64,
    /// Architectural integer registers (`x0` stored as 0).
    pub regs: [u64; NUM_REGS as usize],
    /// Exit code, if the machine has already halted.
    pub exit_code: Option<u64>,
    /// Values printed so far.
    pub output: Vec<i64>,
    /// Touched memory pages, sorted by page number.
    pub pages: Vec<(u64, [u8; PAGE_SIZE as usize])>,
    /// Microarchitectural warm state, if warm-up was requested.
    pub warm: Option<WarmState>,
    /// Detection scheme the snapshot was captured under. The functional
    /// state is scheme-independent, but warm state and downstream
    /// timing are not, so [`Checkpoint::decode_for`] refuses a frame
    /// stamped with a different scheme.
    pub scheme: Scheme,
    /// Instruction set the captured program executes under. Register
    /// contents and the pc are only meaningful per-ISA, so
    /// [`Checkpoint::decode_for`] refuses a frame stamped with a
    /// different ISA.
    pub isa: IsaId,
}

impl Checkpoint {
    /// Captures the emulator's full functional state.
    pub fn capture(emulator: &Emulator, warm: Option<WarmState>) -> Checkpoint {
        Checkpoint {
            instructions: emulator.instructions(),
            pc: emulator.state().pc,
            regs: *emulator.state().regs(),
            exit_code: emulator.exit_code(),
            output: emulator.output().to_vec(),
            pages: emulator
                .memory()
                .pages_sorted()
                .into_iter()
                .map(|(n, p)| (n, *p))
                .collect(),
            warm: None,
            scheme: Scheme::Baseline,
            isa: emulator.isa(),
        }
        .with_warm(warm)
    }

    fn with_warm(mut self, warm: Option<WarmState>) -> Checkpoint {
        self.warm = warm;
        self
    }

    /// Stamps the detection scheme this snapshot belongs to.
    pub fn with_scheme(mut self, scheme: Scheme) -> Checkpoint {
        self.scheme = scheme;
        self
    }

    /// Stamps the instruction set this snapshot belongs to. Rarely
    /// needed directly — [`Checkpoint::capture`] copies the stamp from
    /// the emulator's program.
    pub fn with_isa(mut self, isa: IsaId) -> Checkpoint {
        self.isa = isa;
        self
    }

    /// Rebuilds a functional emulator that continues bit-identically
    /// from this boundary. `program` must be the program that produced
    /// the checkpoint.
    pub fn restore(&self, program: &Program) -> Emulator {
        let mut memory = Memory::new();
        for &(page_number, contents) in &self.pages {
            memory.insert_page(page_number, contents);
        }
        Emulator::from_parts(
            program,
            ArchState::from_regs(self.regs, self.pc),
            memory,
            self.output.clone(),
            self.instructions,
            self.exit_code,
        )
    }

    /// FNV-1a digest of the architectural state (registers + PC) this
    /// checkpoint restores to — the same digest [`Emulator::run`]
    /// reports, so a restored run can be checked against the frame.
    pub fn arch_digest(&self) -> u64 {
        ArchState::from_regs(self.regs, self.pc).digest()
    }

    /// Serializes to the version-4 binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_bytes(&MAGIC);
        e.put_u16(VERSION);
        let mut flags = 0u16;
        if self.warm.is_some() {
            flags |= FLAG_WARM;
        }
        if self.exit_code.is_some() {
            flags |= FLAG_HALTED;
        }
        e.put_u16(flags);
        e.put_u64(self.instructions);
        e.put_u64(self.pc);
        e.put_len(self.regs.len());
        for &r in &self.regs {
            e.put_u64(r);
        }
        e.put_u64(self.arch_digest());
        e.put_u8(self.scheme.id());
        e.put_u8(self.isa.id());
        if let Some(code) = self.exit_code {
            e.put_u64(code);
        }
        e.put_len(self.output.len());
        for &v in &self.output {
            e.put_i64(v);
        }
        e.put_len(self.pages.len());
        for (page_number, contents) in &self.pages {
            e.put_u64(*page_number);
            e.put_bytes(contents);
        }
        if let Some(warm) = &self.warm {
            encode_warm(&mut e, warm);
        }
        e.finish_with_crc()
    }

    /// Parses the binary format, validating magic, version, CRC, and
    /// structure. Never panics on hostile input.
    ///
    /// # Errors
    ///
    /// Returns a [`CkptError`] describing the first defect found.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CkptError> {
        if bytes.len() < MAGIC.len() + 2 + 2 + 4 {
            return Err(CkptError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(CkptError::BadMagic);
        }
        let body = &bytes[..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("len 4"));
        let computed = crc32(body);
        if stored != computed {
            return Err(CkptError::BadCrc { stored, computed });
        }

        let mut d = Decoder::new(&body[4..]);
        let version = d.take_u16()?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(CkptError::UnsupportedVersion(version));
        }
        let flags = d.take_u16()?;
        if flags & !(FLAG_WARM | FLAG_HALTED) != 0 {
            return Err(CkptError::Malformed("unknown flag bits"));
        }
        let instructions = d.take_u64()?;
        let pc = d.take_u64()?;
        let nregs = d.take_len(8)?;
        if nregs != NUM_REGS as usize {
            return Err(CkptError::Malformed("register count"));
        }
        let mut regs = [0u64; NUM_REGS as usize];
        for r in &mut regs {
            *r = d.take_u64()?;
        }
        if regs[0] != 0 {
            return Err(CkptError::Malformed("nonzero x0"));
        }
        let digest = d.take_u64()?;
        if digest != ArchState::from_regs(regs, pc).digest() {
            return Err(CkptError::Malformed("architectural digest mismatch"));
        }
        let scheme =
            Scheme::from_id(d.take_u8()?).ok_or(CkptError::Malformed("unknown scheme id"))?;
        let isa = if version >= 4 {
            IsaId::from_id(d.take_u8()?).ok_or(CkptError::Malformed("unknown isa id"))?
        } else {
            IsaId::Native
        };
        let exit_code = if flags & FLAG_HALTED != 0 {
            Some(d.take_u64()?)
        } else {
            None
        };
        let noutput = d.take_len(8)?;
        let mut output = Vec::with_capacity(noutput);
        for _ in 0..noutput {
            output.push(d.take_i64()?);
        }
        let npages = d.take_len(8 + PAGE_SIZE as usize)?;
        let mut pages = Vec::with_capacity(npages);
        let mut last_page = None;
        for _ in 0..npages {
            let page_number = d.take_u64()?;
            if last_page.is_some_and(|p| p >= page_number) {
                return Err(CkptError::Malformed("pages out of order"));
            }
            last_page = Some(page_number);
            let contents: [u8; PAGE_SIZE as usize] = d
                .take_bytes(PAGE_SIZE as usize)?
                .try_into()
                .expect("page size");
            pages.push((page_number, contents));
        }
        let warm = if flags & FLAG_WARM != 0 {
            Some(decode_warm(&mut d)?)
        } else {
            None
        };
        if d.remaining() != 0 {
            return Err(CkptError::Malformed("trailing bytes"));
        }
        Ok(Checkpoint {
            instructions,
            pc,
            regs,
            exit_code,
            output,
            pages,
            warm,
            scheme,
            isa,
        })
    }

    /// Decodes and additionally enforces that the frame was captured
    /// under `scheme` and `isa` — the restore-time half of both stamps.
    ///
    /// # Errors
    ///
    /// Everything [`Checkpoint::decode`] rejects, plus
    /// [`CkptError::SchemeMismatch`] when the stored scheme differs and
    /// [`CkptError::IsaMismatch`] when the stored ISA differs.
    pub fn decode_for(bytes: &[u8], scheme: Scheme, isa: IsaId) -> Result<Checkpoint, CkptError> {
        let ck = Checkpoint::decode(bytes)?;
        if ck.scheme != scheme {
            return Err(CkptError::SchemeMismatch {
                stored: ck.scheme,
                requested: scheme,
            });
        }
        if ck.isa != isa {
            return Err(CkptError::IsaMismatch {
                stored: ck.isa,
                requested: isa,
            });
        }
        Ok(ck)
    }
}

fn encode_cache(e: &mut Encoder, snap: &CacheSnapshot) {
    e.put_len(snap.lines.len());
    for line in &snap.lines {
        e.put_u64(line.tag);
        e.put_u8(u8::from(line.valid) | u8::from(line.dirty) << 1);
        e.put_u64(line.lru);
    }
    e.put_u64(snap.tick);
    e.put_u64(snap.stats.accesses);
    e.put_u64(snap.stats.hits);
    e.put_u64(snap.stats.misses);
    e.put_u64(snap.stats.writebacks);
}

fn decode_cache(d: &mut Decoder<'_>) -> Result<CacheSnapshot, CkptError> {
    let n = d.take_len(17)?;
    let mut lines = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = d.take_u64()?;
        let vd = d.take_u8()?;
        if vd & !0b11 != 0 {
            return Err(CkptError::Malformed("cache line flag bits"));
        }
        let lru = d.take_u64()?;
        lines.push(LineState {
            tag,
            valid: vd & 1 != 0,
            dirty: vd & 2 != 0,
            lru,
        });
    }
    Ok(CacheSnapshot {
        lines,
        tick: d.take_u64()?,
        stats: CacheStats {
            accesses: d.take_u64()?,
            hits: d.take_u64()?,
            misses: d.take_u64()?,
            writebacks: d.take_u64()?,
        },
    })
}

fn encode_tlb(e: &mut Encoder, snap: &TlbSnapshot) {
    e.put_len(snap.entries.len());
    for &(vpn, lru) in &snap.entries {
        e.put_u64(vpn);
        e.put_u64(lru);
    }
    e.put_u64(snap.tick);
    e.put_u64(snap.hits);
    e.put_u64(snap.misses);
}

fn decode_tlb(d: &mut Decoder<'_>) -> Result<TlbSnapshot, CkptError> {
    let n = d.take_len(16)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push((d.take_u64()?, d.take_u64()?));
    }
    Ok(TlbSnapshot {
        entries,
        tick: d.take_u64()?,
        hits: d.take_u64()?,
        misses: d.take_u64()?,
    })
}

fn encode_warm(e: &mut Encoder, warm: &WarmState) {
    encode_cache(e, &warm.hierarchy.l1i);
    encode_cache(e, &warm.hierarchy.l1d);
    encode_cache(e, &warm.hierarchy.l2);
    encode_tlb(e, &warm.hierarchy.itlb);
    encode_tlb(e, &warm.hierarchy.dtlb);
    e.put_u64(warm.hierarchy.prefetches_issued);
    e.put_len(warm.branch.dir_words.len());
    for &w in &warm.branch.dir_words {
        e.put_u64(w);
    }
    e.put_len(warm.branch.btb.len());
    for slot in &warm.branch.btb {
        match slot {
            Some((tag, target)) => {
                e.put_u8(1);
                e.put_u64(*tag);
                e.put_u64(*target);
            }
            None => {
                e.put_u8(0);
                e.put_u64(0);
                e.put_u64(0);
            }
        }
    }
    e.put_len(warm.branch.ras.stack.len());
    for &addr in &warm.branch.ras.stack {
        e.put_u64(addr);
    }
    e.put_u64(warm.branch.ras.top as u64);
    e.put_u64(warm.branch.ras.depth as u64);
    e.put_u64(warm.branch.stats.branch_lookups);
    e.put_u64(warm.branch.stats.branch_mispredicts);
    e.put_u64(warm.branch.stats.indirect_lookups);
    e.put_u64(warm.branch.stats.indirect_mispredicts);
}

fn decode_warm(d: &mut Decoder<'_>) -> Result<WarmState, CkptError> {
    let l1i = decode_cache(d)?;
    let l1d = decode_cache(d)?;
    let l2 = decode_cache(d)?;
    let itlb = decode_tlb(d)?;
    let dtlb = decode_tlb(d)?;
    let prefetches_issued = d.take_u64()?;
    let ndir = d.take_len(8)?;
    let mut dir_words = Vec::with_capacity(ndir);
    for _ in 0..ndir {
        dir_words.push(d.take_u64()?);
    }
    let nbtb = d.take_len(17)?;
    let mut btb = Vec::with_capacity(nbtb);
    for _ in 0..nbtb {
        let present = d.take_u8()?;
        let tag = d.take_u64()?;
        let target = d.take_u64()?;
        btb.push(match present {
            0 => None,
            1 => Some((tag, target)),
            _ => return Err(CkptError::Malformed("BTB presence byte")),
        });
    }
    let nras = d.take_len(8)?;
    let mut stack = Vec::with_capacity(nras);
    for _ in 0..nras {
        stack.push(d.take_u64()?);
    }
    let top = d.take_u64()? as usize;
    let depth = d.take_u64()? as usize;
    if (top >= nras && nras > 0) || depth > nras {
        return Err(CkptError::Malformed("RAS geometry"));
    }
    let stats = BranchStats {
        branch_lookups: d.take_u64()?,
        branch_mispredicts: d.take_u64()?,
        indirect_lookups: d.take_u64()?,
        indirect_mispredicts: d.take_u64()?,
    };
    Ok(WarmState {
        hierarchy: reese_mem::HierarchySnapshot {
            l1i,
            l1d,
            l2,
            itlb,
            dtlb,
            prefetches_issued,
        },
        branch: BranchSnapshot {
            dir_words,
            btb,
            ras: RasSnapshot { stack, top, depth },
            stats,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_isa::assemble;

    const PROG: &str = "  li t0, 25\n  la a0, buf\nloop: sd t0, 0(a0)\n  addi a0, a0, 8\n  \
                        addi t0, t0, -1\n  print t0\n  bnez t0, loop\n  halt\n  .data\nbuf: .space 512\n";

    fn mid_run_emulator() -> (Program, Emulator) {
        let prog = assemble(PROG).unwrap();
        let mut emu = Emulator::new(&prog);
        emu.run(40).unwrap();
        (prog, emu)
    }

    #[test]
    fn capture_restore_is_identity() {
        let (prog, emu) = mid_run_emulator();
        let ck = Checkpoint::capture(&emu, None);
        let restored = ck.restore(&prog);
        assert_eq!(restored.instructions(), emu.instructions());
        assert_eq!(restored.state(), emu.state());
        assert_eq!(restored.output(), emu.output());

        let mut a = emu;
        let mut b = restored;
        let ra = a.run(u64::MAX).unwrap();
        let rb = b.run(u64::MAX).unwrap();
        assert_eq!(ra, rb);
    }

    #[test]
    fn encode_decode_round_trip() {
        let (_, emu) = mid_run_emulator();
        let ck = Checkpoint::capture(&emu, None);
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn encode_decode_round_trip_with_warm_state() {
        let (_, emu) = mid_run_emulator();
        let mut hierarchy = reese_mem::MemHierarchy::new(reese_mem::HierarchyConfig::paper());
        hierarchy.access_inst(0x1000);
        hierarchy.access_data(0x8000, true);
        let mut branch = reese_bpred::BranchUnit::new(reese_bpred::PredictorConfig::default());
        branch.predict_branch(0x1000);
        branch.resolve_branch(0x1000, false, true);
        branch.push_return(0x2008);
        let warm = WarmState {
            hierarchy: hierarchy.export_state(),
            branch: branch.export_state(),
        };
        let ck = Checkpoint::capture(&emu, Some(warm));
        let back = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn halted_machine_round_trips() {
        let prog = assemble("  li a0, 7\n  print a0\n  halt\n").unwrap();
        let mut emu = Emulator::new(&prog);
        emu.run(u64::MAX).unwrap();
        let ck = Checkpoint::capture(&emu, None);
        assert_eq!(ck.exit_code, emu.exit_code());
        let back = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(back, ck);
        assert_eq!(back.restore(&prog).exit_code(), emu.exit_code());
    }

    #[test]
    fn corrupted_crc_is_rejected_not_panicked() {
        let (_, emu) = mid_run_emulator();
        let mut bytes = Checkpoint::capture(&emu, None).encode();
        let n = bytes.len();
        bytes[n / 2] ^= 0x40;
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CkptError::BadCrc { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let (_, emu) = mid_run_emulator();
        let good = Checkpoint::capture(&emu, None).encode();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(Checkpoint::decode(&bad_magic), Err(CkptError::BadMagic));

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        // The CRC covers the version field, so refresh the trailer to
        // reach the version check itself.
        let n = bad_version.len();
        let crc = crc32(&bad_version[..n - 4]);
        bad_version[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            Checkpoint::decode(&bad_version),
            Err(CkptError::UnsupportedVersion(99))
        );

        assert_eq!(Checkpoint::decode(&good[..6]), Err(CkptError::Truncated));
        assert_eq!(Checkpoint::decode(b""), Err(CkptError::Truncated));
    }

    #[test]
    fn old_version_frames_are_rejected_after_layout_bumps() {
        // v2 added the digest field, v3 the scheme byte; both changed
        // the frame layout, so older blobs must be refused outright
        // rather than misparsed.
        let (_, emu) = mid_run_emulator();
        let good = Checkpoint::capture(&emu, None).encode();
        assert_eq!(
            u16::from_le_bytes([good[4], good[5]]),
            VERSION,
            "current frames carry the bumped version"
        );
        for old in [1u16, 2] {
            let mut bytes = good.clone();
            bytes[4..6].copy_from_slice(&old.to_le_bytes());
            let n = bytes.len();
            let crc = crc32(&bytes[..n - 4]);
            bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
            assert_eq!(
                Checkpoint::decode(&bytes),
                Err(CkptError::UnsupportedVersion(old))
            );
        }
    }

    #[test]
    fn scheme_round_trips_and_mismatch_is_rejected() {
        let (_, emu) = mid_run_emulator();
        for scheme in Scheme::ALL {
            let ck = Checkpoint::capture(&emu, None).with_scheme(scheme);
            let bytes = ck.encode();
            let back = Checkpoint::decode(&bytes).unwrap();
            assert_eq!(back.scheme, scheme);
            assert_eq!(
                Checkpoint::decode_for(&bytes, scheme, IsaId::Native).unwrap(),
                ck
            );
            for other in Scheme::ALL.into_iter().filter(|&o| o != scheme) {
                assert_eq!(
                    Checkpoint::decode_for(&bytes, other, IsaId::Native),
                    Err(CkptError::SchemeMismatch {
                        stored: scheme,
                        requested: other,
                    }),
                    "a `{scheme}` snapshot must not restore under `{other}`"
                );
            }
        }
    }

    #[test]
    fn isa_round_trips_per_frontend_and_mismatch_is_rejected() {
        let (_, emu) = mid_run_emulator();
        for isa in IsaId::ALL {
            let ck = Checkpoint::capture(&emu, None).with_isa(isa);
            let bytes = ck.encode();
            let back = Checkpoint::decode(&bytes).unwrap();
            assert_eq!(back.isa, isa);
            assert_eq!(
                Checkpoint::decode_for(&bytes, Scheme::Baseline, isa).unwrap(),
                ck
            );
            for other in IsaId::ALL.into_iter().filter(|&o| o != isa) {
                assert_eq!(
                    Checkpoint::decode_for(&bytes, Scheme::Baseline, other),
                    Err(CkptError::IsaMismatch {
                        stored: isa,
                        requested: other,
                    }),
                    "a `{}` snapshot must not restore under `{}`",
                    isa.name(),
                    other.name()
                );
            }
        }
    }

    #[test]
    fn capture_copies_the_isa_stamp_from_the_program() {
        let src = "  li a7, 93
  li a0, 0
  ecall
";
        let prog = IsaId::Rv32i.frontend().assemble(src).unwrap();
        let mut emu = Emulator::new(&prog);
        emu.step().unwrap();
        let ck = Checkpoint::capture(&emu, None);
        assert_eq!(ck.isa, IsaId::Rv32i);
        let back = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(back.isa, IsaId::Rv32i);
        // A restore continues under rv32i semantics: the next li still
        // advances the pc by 4.
        let mut restored = back.restore(&prog);
        restored.step().unwrap();
        assert_eq!(restored.state().pc, prog.entry() + 8);
    }

    #[test]
    fn v3_frames_without_isa_byte_decode_as_native() {
        let (_, emu) = mid_run_emulator();
        let ck = Checkpoint::capture(&emu, None);
        let v4 = ck.encode();
        // Rebuild the frame as a v3 blob: drop the isa byte (offset 549,
        // right after the scheme byte) and stamp version 3.
        let isa_off = 4 + 2 + 2 + 8 + 8 + 4 + 64 * 8 + 8 + 1;
        let mut v3: Vec<u8> = Vec::with_capacity(v4.len() - 1);
        v3.extend_from_slice(&v4[..isa_off]);
        v3.extend_from_slice(&v4[isa_off + 1..v4.len() - 4]);
        v3[4..6].copy_from_slice(&3u16.to_le_bytes());
        let crc = crc32(&v3);
        v3.extend_from_slice(&crc.to_le_bytes());
        let back = Checkpoint::decode(&v3).unwrap();
        assert_eq!(back.isa, IsaId::Native);
        assert_eq!(back, ck);
    }

    #[test]
    fn unknown_isa_id_is_malformed() {
        let (_, emu) = mid_run_emulator();
        let mut bytes = Checkpoint::capture(&emu, None).encode();
        // Isa byte offset: scheme byte at 548, isa right after.
        let off = 4 + 2 + 2 + 8 + 8 + 4 + 64 * 8 + 8 + 1;
        bytes[off] = 0xEE;
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            Checkpoint::decode(&bytes),
            Err(CkptError::Malformed("unknown isa id"))
        );
    }

    #[test]
    fn unknown_scheme_id_is_malformed() {
        let (_, emu) = mid_run_emulator();
        let mut bytes = Checkpoint::capture(&emu, None).encode();
        // Scheme byte offset: magic 4 + version 2 + flags 2 +
        // instructions 8 + pc 8 + count 4 + 64 regs + digest 8 = 548.
        let off = 4 + 2 + 2 + 8 + 8 + 4 + 64 * 8 + 8;
        bytes[off] = 0xEE;
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            Checkpoint::decode(&bytes),
            Err(CkptError::Malformed("unknown scheme id"))
        );
    }

    #[test]
    fn architectural_digest_catches_corruption_the_crc_misses() {
        // A rewritten frame (valid CRC, altered register) models
        // corruption upstream of serialization — e.g. a buggy tool that
        // re-frames checkpoints. The semantic digest must refuse it.
        let (_, emu) = mid_run_emulator();
        let mut bytes = Checkpoint::capture(&emu, None).encode();
        // regs[1] low byte: magic 4 + version 2 + flags 2 +
        // instructions 8 + pc 8 + count 4 + regs[0] 8 = 36.
        bytes[36] ^= 0xFF;
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            Checkpoint::decode(&bytes),
            Err(CkptError::Malformed("architectural digest mismatch"))
        );
    }

    #[test]
    fn truncated_tail_is_rejected() {
        let (_, emu) = mid_run_emulator();
        let bytes = Checkpoint::capture(&emu, None).encode();
        for cut in [bytes.len() - 5, bytes.len() / 2, 13] {
            assert!(Checkpoint::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
