//! The sharded single-run driver: split one long simulation into K
//! intervals at checkpoint boundaries, simulate each interval's
//! detailed timing on a worker pool, and stitch the per-interval
//! statistics into one report.
//!
//! Functional results (instruction counts, committed architectural
//! state, program output) are *exact* — the emulator continues
//! bit-identically from a restored checkpoint. Cycle counts are
//! approximate: each interval starts with a cold (or warmed) pipeline,
//! caches, and branch predictor, so the stitched cycle total carries a
//! per-interval cold-start error that the oracle measures against a
//! monolithic run.
//!
//! Checkpoints cross the worker boundary in their serialized form: each
//! worker decodes the binary frame, restores the emulator, and runs its
//! interval, so every sharded run also exercises the wire format
//! end-to-end.

use crate::{boundaries, checkpoints_at, Checkpoint, CkptError, Scheme};
use reese_core::{DuplexSim, ReeseConfig, ReeseError, ReeseSim, ReeseStats};
use reese_cpu::{EmuError, Emulator, StopReason};
use reese_isa::Program;
use reese_pipeline::{PipelineSim, SimResult};
use reese_stats::{par_map_indexed, ParallelStats};
use reese_trace::{MetricsSeries, TraceRing, Tracer};
use std::fmt;

/// Why a sharded run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardError {
    /// The scheme has no per-interval timing machine (see
    /// [`Scheme::shardable`]).
    UnsupportedScheme(Scheme),
    /// The functional reference run failed.
    Emu(EmuError),
    /// The program never halts, so it cannot be split into a finite
    /// number of intervals.
    DidNotHalt,
    /// A checkpoint failed to decode on a worker.
    Ckpt(CkptError),
    /// A detailed interval simulation failed.
    Interval {
        /// Which interval.
        index: usize,
        /// The simulator's error.
        source: ReeseError,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::UnsupportedScheme(s) => {
                write!(f, "scheme `{s}` has no sharded interval machine")
            }
            ShardError::Emu(e) => write!(f, "functional reference run failed: {e}"),
            ShardError::DidNotHalt => write!(f, "program did not halt; cannot shard"),
            ShardError::Ckpt(e) => write!(f, "checkpoint rejected: {e}"),
            ShardError::Interval { index, source } => {
                write!(f, "interval {index} simulation failed: {source}")
            }
        }
    }
}

impl std::error::Error for ShardError {}

impl From<EmuError> for ShardError {
    fn from(e: EmuError) -> ShardError {
        ShardError::Emu(e)
    }
}

/// How to shard a run.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Number of intervals K (collapsed if the program is shorter).
    pub intervals: usize,
    /// Worker threads for the interval simulations.
    pub jobs: usize,
    /// Warm-up window W: the last W instructions before each boundary
    /// (clamped at the previous boundary) warm the caches and branch
    /// predictor during fast-forward. 0 = cold intervals.
    pub warmup: u64,
    /// Also run the monolithic detailed simulation and measure the
    /// stitched cycle error against it.
    pub compare_monolithic: bool,
    /// Bound on the functional reference pass; a program still running
    /// after this many instructions is treated as non-halting.
    pub max_instructions: u64,
    /// Sampling interval in cycles for the per-interval metrics series
    /// and pipetrace ring. 0 (the default) runs the intervals
    /// unobserved — the zero-cost path.
    pub metrics_interval: u64,
}

impl Default for ShardOptions {
    fn default() -> ShardOptions {
        ShardOptions {
            intervals: 4,
            jobs: reese_stats::available_jobs(),
            warmup: 0,
            compare_monolithic: true,
            max_instructions: u64::MAX,
            metrics_interval: 0,
        }
    }
}

/// One interval's detailed-timing outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalResult {
    /// First dynamic instruction of this interval.
    pub start: u64,
    /// Instructions committed by this interval's detailed run.
    pub instructions: u64,
    /// Cycles this interval's detailed run took.
    pub cycles: u64,
    /// Whether the interval's checkpoint carried warm state.
    pub warmed: bool,
}

/// The exactness/accuracy oracle: functional quantities must match
/// bit-for-bit; cycles are compared against the monolithic run when
/// available.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOracle {
    /// Stitched committed-instruction count equals the functional run's.
    pub instructions_match: bool,
    /// Final architectural state digest equals the functional run's.
    pub digest_match: bool,
    /// Concatenated program output equals the functional run's.
    pub output_match: bool,
    /// Monolithic detailed cycle count, if measured.
    pub monolithic_cycles: Option<u64>,
    /// Relative cycle error of the stitched total vs monolithic:
    /// `(sharded - monolithic) / monolithic`.
    pub cycle_error: Option<f64>,
}

impl ShardOracle {
    /// All functional quantities match bit-for-bit.
    pub fn exact(&self) -> bool {
        self.instructions_match && self.digest_match && self.output_match
    }
}

/// The stitched result of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Which machine simulated the intervals.
    pub scheme: Scheme,
    /// Dynamic instruction count of the whole program.
    pub total_instructions: u64,
    /// Per-interval outcomes, in program order.
    pub intervals: Vec<IntervalResult>,
    /// Sum of per-interval cycle counts.
    pub sharded_cycles: u64,
    /// Stitched statistics (cycle counts summed, histograms merged).
    pub stats: ReeseStats,
    /// Concatenated program output.
    pub output: Vec<i64>,
    /// Exit code from the final interval.
    pub exit_code: Option<u64>,
    /// Final architectural state digest, from the final interval.
    pub state_digest: u64,
    /// The exactness/accuracy oracle verdict.
    pub oracle: ShardOracle,
    /// Worker-pool throughput for the interval simulations.
    pub parallel: ParallelStats,
    /// Total size of the serialized checkpoints shipped to workers.
    pub checkpoint_bytes: usize,
    /// Per-interval metrics stitched onto the global cycle axis, when
    /// [`ShardOptions::metrics_interval`] asked for observation.
    pub metrics: Option<MetricsSeries>,
    /// Pipetrace events stitched onto the global cycle axis, when
    /// observation was requested.
    pub trace: Option<TraceRing>,
}

impl ShardReport {
    /// Stitched instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.sharded_cycles == 0 {
            return 0.0;
        }
        self.total_instructions as f64 / self.sharded_cycles as f64
    }
}

/// What one worker sends back: the scheme-independent slice of a
/// detailed run.
struct Outcome {
    stats: ReeseStats,
    output: Vec<i64>,
    exit_code: Option<u64>,
    state_digest: u64,
    warmed: bool,
    metrics: Option<MetricsSeries>,
    trace: Option<TraceRing>,
}

impl Outcome {
    fn from_baseline(r: SimResult, warmed: bool) -> Outcome {
        let mut stats = ReeseStats::new(1);
        stats.pipeline = r.stats;
        Outcome {
            stats,
            output: r.output,
            exit_code: r.exit_code,
            state_digest: r.state_digest,
            warmed,
            metrics: None,
            trace: None,
        }
    }

    fn from_reese(r: reese_core::ReeseResult, warmed: bool) -> Outcome {
        Outcome {
            stats: r.stats,
            output: r.output,
            exit_code: r.exit_code,
            state_digest: r.state_digest,
            warmed,
            metrics: None,
            trace: None,
        }
    }
}

/// Splits one run of `program` into `opts.intervals` intervals at
/// checkpoint boundaries, simulates each interval's detailed timing
/// under `scheme` on `opts.jobs` workers, and stitches the results.
///
/// # Errors
///
/// Returns a [`ShardError`] if the program does not halt, a checkpoint
/// fails to decode, or any interval simulation fails.
pub fn run_sharded(
    program: &Program,
    config: &ReeseConfig,
    scheme: Scheme,
    opts: &ShardOptions,
) -> Result<ShardReport, ShardError> {
    if !scheme.shardable() {
        return Err(ShardError::UnsupportedScheme(scheme));
    }

    // Pass 1: the functional reference run. Its instruction count fixes
    // the boundaries; its digest and output are the oracle's ground
    // truth.
    let reference = Emulator::new(program).run(opts.max_instructions)?;
    let StopReason::Halted { .. } = reference.stop else {
        return Err(ShardError::DidNotHalt);
    };
    let total = reference.instructions;

    // Pass 2: fast-forward, emitting one checkpoint per interval start.
    let bounds = boundaries(total, opts.intervals);
    let mut ckpts = checkpoints_at(program, &bounds, opts.warmup, &config.pipeline)?;
    for ck in &mut ckpts {
        ck.scheme = scheme;
    }

    // Ship each interval to the pool in serialized form.
    let jobs: Vec<(Vec<u8>, u64)> = ckpts
        .iter()
        .enumerate()
        .map(|(i, ck)| {
            let end = bounds.get(i + 1).copied().unwrap_or(total);
            (ck.encode(), end - bounds[i])
        })
        .collect();
    let checkpoint_bytes = jobs.iter().map(|(bytes, _)| bytes.len()).sum();

    let (results, parallel) = par_map_indexed(opts.jobs, &jobs, |index, (bytes, len)| {
        run_one_interval(program, config, scheme, bytes, *len, opts.metrics_interval).map_err(
            |source| match source {
                IntervalError::Ckpt(e) => ShardError::Ckpt(e),
                IntervalError::Sim(source) => ShardError::Interval { index, source },
            },
        )
    });

    // Stitch, in program order. Each interval's observer ran on a local
    // clock starting at zero, so its rows and events are shifted by the
    // cycles of every interval before it.
    let mut intervals = Vec::with_capacity(results.len());
    let mut stats: Option<ReeseStats> = None;
    let mut output = Vec::new();
    let mut exit_code = None;
    let mut state_digest = 0;
    let mut committed_total = 0u64;
    let mut metrics: Option<MetricsSeries> = None;
    let mut trace: Option<TraceRing> = None;
    let mut cycle_offset = 0u64;
    for (i, result) in results.into_iter().enumerate() {
        let outcome = result?;
        intervals.push(IntervalResult {
            start: bounds[i],
            instructions: outcome.stats.pipeline.committed,
            cycles: outcome.stats.pipeline.cycles,
            warmed: outcome.warmed,
        });
        committed_total += outcome.stats.pipeline.committed;
        output.extend_from_slice(&outcome.output);
        exit_code = outcome.exit_code;
        state_digest = outcome.state_digest;
        if let Some(m) = &outcome.metrics {
            metrics
                .get_or_insert_with(|| MetricsSeries::new(m.interval))
                .merge_concat(m, cycle_offset);
        }
        if let Some(t) = &outcome.trace {
            trace
                .get_or_insert_with(|| TraceRing::new(t.capacity()))
                .merge_concat(t, cycle_offset);
        }
        cycle_offset += outcome.stats.pipeline.cycles;
        match &mut stats {
            None => stats = Some(outcome.stats),
            Some(s) => s.merge(&outcome.stats),
        }
    }
    let stats = stats.expect("at least one interval");
    let sharded_cycles = stats.pipeline.cycles;

    // The oracle: functional exactness always; cycle accuracy when the
    // monolithic detailed run is requested.
    let monolithic_cycles = if opts.compare_monolithic {
        Some(run_monolithic(program, config, scheme)?)
    } else {
        None
    };
    let oracle = ShardOracle {
        instructions_match: committed_total == total,
        digest_match: state_digest == reference.state_digest,
        output_match: output == reference.output,
        monolithic_cycles,
        cycle_error: monolithic_cycles
            .map(|mono| (sharded_cycles as f64 - mono as f64) / mono as f64),
    };

    Ok(ShardReport {
        scheme,
        total_instructions: total,
        intervals,
        sharded_cycles,
        stats,
        output,
        exit_code,
        state_digest,
        oracle,
        parallel,
        checkpoint_bytes,
        metrics,
        trace,
    })
}

enum IntervalError {
    Ckpt(CkptError),
    Sim(ReeseError),
}

fn run_one_interval(
    program: &Program,
    config: &ReeseConfig,
    scheme: Scheme,
    bytes: &[u8],
    len: u64,
    metrics_interval: u64,
) -> Result<Outcome, IntervalError> {
    let ck = Checkpoint::decode_for(bytes, scheme, program.isa()).map_err(IntervalError::Ckpt)?;
    let emulator = ck.restore(program);
    let warm = ck.warm.as_ref();
    let warmed = warm.is_some();
    let mut tracer = (metrics_interval > 0).then(|| Tracer::new().with_interval(metrics_interval));
    let mut outcome = match scheme {
        Scheme::Baseline => {
            let sim = PipelineSim::new(config.pipeline.clone());
            match &mut tracer {
                Some(t) => sim.run_interval_observed(emulator, warm, len, t),
                None => sim.run_interval(emulator, warm, len),
            }
            .map(|r| Outcome::from_baseline(r, warmed))
            .map_err(|e| IntervalError::Sim(ReeseError::Sim(e)))?
        }
        Scheme::Reese => {
            let sim = ReeseSim::new(config.clone());
            match &mut tracer {
                Some(t) => sim.run_interval_observed(emulator, warm, len, t),
                None => sim.run_interval(emulator, warm, len),
            }
            .map(|r| Outcome::from_reese(r, warmed))
            .map_err(IntervalError::Sim)?
        }
        Scheme::Duplex => {
            let sim = DuplexSim::new(config.pipeline.clone());
            match &mut tracer {
                Some(t) => sim.run_interval_observed(emulator, warm, len, t),
                None => sim.run_interval(emulator, warm, len),
            }
            .map(|r| Outcome::from_reese(r, warmed))
            .map_err(IntervalError::Sim)?
        }
        // `run_sharded` rejects non-shardable schemes before dispatch.
        Scheme::Meek | Scheme::Swift => unreachable!("non-shardable scheme reached a worker"),
    };
    if let Some(mut t) = tracer {
        t.finish();
        let (ring, metrics) = t.into_parts();
        outcome.trace = Some(ring);
        outcome.metrics = Some(metrics);
    }
    Ok(outcome)
}

fn run_monolithic(
    program: &Program,
    config: &ReeseConfig,
    scheme: Scheme,
) -> Result<u64, ShardError> {
    let err = |source| ShardError::Interval {
        index: usize::MAX,
        source,
    };
    match scheme {
        Scheme::Baseline => PipelineSim::new(config.pipeline.clone())
            .run(program)
            .map(|r| r.stats.cycles)
            .map_err(|e| err(ReeseError::Sim(e))),
        Scheme::Reese => ReeseSim::new(config.clone())
            .run(program)
            .map(|r| r.cycles())
            .map_err(err),
        Scheme::Duplex => DuplexSim::new(config.pipeline.clone())
            .run(program)
            .map(|r| r.cycles())
            .map_err(err),
        Scheme::Meek | Scheme::Swift => Err(ShardError::UnsupportedScheme(scheme)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_isa::assemble;

    fn program() -> Program {
        assemble(
            "  la a0, buf\n  li s0, 300\n\
             loop: andi t4, s0, 63\n  slli t2, t4, 3\n  add t3, a0, t2\n  ld t0, 0(t3)\n\
             \n  addi t0, t0, 3\n  mul t1, t0, s0\n  xor t5, t5, t1\n  sd t0, 0(t3)\n\
             \n  addi s0, s0, -1\n  bnez s0, loop\n  print t5\n  halt\n\
             \n  .data\nbuf: .space 512\n",
        )
        .unwrap()
    }

    fn options(intervals: usize) -> ShardOptions {
        ShardOptions {
            intervals,
            jobs: 2,
            ..ShardOptions::default()
        }
    }

    #[test]
    fn sharded_run_is_functionally_exact_for_every_scheme() {
        let prog = program();
        let config = ReeseConfig::starting();
        for scheme in Scheme::ALL.into_iter().filter(|s| s.shardable()) {
            let report = run_sharded(&prog, &config, scheme, &options(4)).unwrap();
            assert!(
                report.oracle.exact(),
                "{}: {:?}",
                scheme.name(),
                report.oracle
            );
            assert_eq!(report.intervals.len(), 4);
            assert_eq!(
                report.intervals.iter().map(|i| i.instructions).sum::<u64>(),
                report.total_instructions
            );
            assert_eq!(report.stats.pipeline.cycles, report.sharded_cycles);
            assert!(report.checkpoint_bytes > 0);
        }
    }

    #[test]
    fn warmup_reduces_or_preserves_cycle_error() {
        let prog = program();
        let config = ReeseConfig::starting();
        let cold = run_sharded(&prog, &config, Scheme::Baseline, &options(4)).unwrap();
        let mut warm_opts = options(4);
        warm_opts.warmup = 2000;
        let warm = run_sharded(&prog, &config, Scheme::Baseline, &warm_opts).unwrap();
        assert!(warm.oracle.exact());
        let (c, w) = (
            cold.oracle.cycle_error.unwrap().abs(),
            warm.oracle.cycle_error.unwrap().abs(),
        );
        assert!(
            w <= c + 1e-9,
            "warm-up must not worsen cycle error (cold {c:.4}, warm {w:.4})"
        );
    }

    #[test]
    fn single_interval_shard_matches_monolithic_cycles_exactly() {
        let prog = program();
        let config = ReeseConfig::starting();
        for scheme in Scheme::ALL.into_iter().filter(|s| s.shardable()) {
            let report = run_sharded(&prog, &config, scheme, &options(1)).unwrap();
            assert!(report.oracle.exact());
            assert_eq!(
                Some(report.sharded_cycles),
                report.oracle.monolithic_cycles,
                "{}: one cold interval from instruction 0 is the monolithic run",
                scheme.name()
            );
            assert_eq!(report.oracle.cycle_error, Some(0.0));
        }
    }

    #[test]
    fn intervals_collapse_on_short_programs() {
        let prog = assemble("  li a0, 1\n  print a0\n  halt\n").unwrap();
        let report = run_sharded(
            &prog,
            &ReeseConfig::starting(),
            Scheme::Baseline,
            &options(16),
        )
        .unwrap();
        assert!(report.oracle.exact());
        assert!(report.intervals.len() <= 3);
        assert_eq!(report.output, vec![1]);
    }

    #[test]
    fn observed_shard_merges_metrics_and_stays_exact() {
        let prog = program();
        let config = ReeseConfig::starting();
        let mut opts = options(4);
        opts.metrics_interval = 500;
        let report = run_sharded(&prog, &config, Scheme::Reese, &opts).unwrap();
        assert!(report.oracle.exact(), "{:?}", report.oracle);

        // Observation must not perturb timing: the stitched cycle count
        // matches the unobserved sharded run exactly.
        let plain = run_sharded(&prog, &config, Scheme::Reese, &options(4)).unwrap();
        assert_eq!(report.sharded_cycles, plain.sharded_cycles);
        assert!(plain.metrics.is_none(), "unobserved run collects nothing");
        assert!(plain.trace.is_none());

        let m = report.metrics.as_ref().expect("metrics collected");
        assert!(!m.rows.is_empty());
        assert_eq!(
            m.totals().committed,
            report.total_instructions,
            "stitched metrics must account for every committed instruction"
        );
        // Rows sit on one global cycle axis, in program order.
        for w in m.rows.windows(2) {
            assert!(w[0].start_cycle <= w[1].start_cycle);
        }
        assert!(m.totals().end_cycle <= report.sharded_cycles + 1);

        let t = report.trace.as_ref().expect("trace collected");
        assert!(!t.is_empty());
    }

    #[test]
    fn non_shardable_schemes_are_rejected_up_front() {
        let prog = program();
        for scheme in Scheme::ALL.into_iter().filter(|s| !s.shardable()) {
            let err =
                run_sharded(&prog, &ReeseConfig::starting(), scheme, &options(2)).unwrap_err();
            assert_eq!(err, ShardError::UnsupportedScheme(scheme));
        }
    }

    #[test]
    fn non_halting_program_is_rejected() {
        let prog = assemble("loop: j loop\n  halt\n").unwrap();
        let mut opts = options(2);
        opts.max_instructions = 10_000;
        let err =
            run_sharded(&prog, &ReeseConfig::starting(), Scheme::Baseline, &opts).unwrap_err();
        assert_eq!(err, ShardError::DidNotHalt);
    }
}
