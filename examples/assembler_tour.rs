//! A tour of the toolchain layer: text assembly, the programmatic
//! builder, binary encoding, and disassembly.
//!
//! ```sh
//! cargo run --release --example assembler_tour
//! ```

use reese::cpu::Emulator;
use reese::isa::{abi::*, assemble, disassemble_text, encode_text, ProgramBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Text assembly with labels, a data segment, and pseudo-ops.
    let program = assemble(
        "        .entry main\n\
         # sum the dwords in `arr`\n\
         sum:     li   t0, 0\n\
         \n        li   t1, 0\n\
         again:   slli t2, t1, 3\n\
         \n        add  t2, a0, t2\n\
         \n        ld   t3, 0(t2)\n\
         \n        add  t0, t0, t3\n\
         \n        addi t1, t1, 1\n\
         \n        blt  t1, a1, again\n\
         \n        mv   a0, t0\n\
         \n        ret\n\
         main:    la   a0, arr\n\
         \n        li   a1, 4\n\
         \n        call sum\n\
         \n        print a0\n\
         \n        halt\n\
         \n        .data\n\
         arr:     .dword 10, 20, 30, 40\n",
    )?;
    let result = Emulator::new(&program).run(10_000)?;
    println!(
        "assembled program prints: {:?} (expected [100])",
        result.output
    );

    // 2. The same program generated through the builder API.
    let mut b = ProgramBuilder::new();
    let arr = b.data_label("arr");
    for v in [10u64, 20, 30, 40] {
        b.dword(v);
    }
    b.la(A0, arr);
    b.li(T0, 0);
    b.li(T1, 0);
    let again = b.here("again");
    b.slli(T2, T1, 3);
    b.add(T2, A0, T2);
    b.ld(T3, 0, T2);
    b.add(T0, T0, T3);
    b.addi(T1, T1, 1);
    b.li(T4, 4);
    b.blt(T1, T4, again);
    b.print(T0);
    b.li(A0, 0);
    b.halt();
    let built = b.build()?;
    let result2 = Emulator::new(&built).run(10_000)?;
    assert_eq!(result.output, result2.output);
    println!("builder-generated program agrees: {:?}", result2.output);

    // 3. Binary encoding and a disassembly listing.
    let image = encode_text(built.text()).map_err(|(i, e)| format!("instr {i}: {e}"))?;
    println!(
        "\nbinary image: {} bytes ({} instructions)",
        image.len(),
        built.len()
    );
    println!(
        "disassembly:\n{}",
        disassemble_text(built.text(), built.text_base())
    );
    Ok(())
}
