//! Soft-error injection: flip bits in instruction results and watch
//! REESE catch them, recover, and — for a sticky fault — stop the
//! machine.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use reese::ckpt::Scheme;
use reese::core::{InjectedFault, ReeseConfig, ReeseError, ReeseSim};
use reese::faults::{Campaign, FaultMix};
use reese::workloads::Kernel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = Kernel::Lisp.build(1);
    let sim = ReeseSim::new(ReeseConfig::starting());

    // 1. A clean run for reference.
    let clean = sim.run(&program)?;
    println!(
        "clean run: {} instructions in {} cycles (IPC {:.3})",
        clean.committed_instructions(),
        clean.cycles(),
        clean.ipc()
    );

    // 2. One transient bit flip in the primary stream's result latch.
    let faults = [InjectedFault::primary(1_000, 13)];
    let hit = sim.run_with_faults(&program, &faults, u64::MAX)?;
    let d = hit.detections[0];
    println!(
        "transient fault on instruction #{} at pc {:#x}: detected after {} cycles, \
         recovery cost {} cycles, architectural state clean: {}",
        d.seq,
        d.pc,
        d.latency(),
        hit.cycles() - clean.cycles(),
        hit.state_digest == clean.state_digest
    );

    // 3. A sticky (permanent) fault: REESE retries once, then reports.
    let sticky = [InjectedFault::permanent(1_000, 13)];
    match sim.run_with_faults(&program, &sticky, u64::MAX) {
        Err(ReeseError::PermanentFault { seq, pc }) => {
            println!("permanent fault on instruction #{seq} at pc {pc:#x}: machine stopped, user notified");
        }
        other => panic!("expected a permanent-fault report, got {other:?}"),
    }

    // 4. A Monte-Carlo campaign over covered and uncovered fault classes.
    let report = Campaign::new(ReeseConfig::starting(), FaultMix::broad())
        .trials(40)
        .seed(2026)
        .run(&program)?;
    println!("\ncampaign over a broad fault mix:\n{report}");

    // 5. The same campaign machinery measures every registered
    //    detection backend — the campaign builds the scheme from the
    //    registry and scores identical fault draws against each one.
    println!("same fault draws, every registered scheme:");
    for scheme in Scheme::ALL {
        let report = Campaign::new(ReeseConfig::starting(), FaultMix::result_errors_only())
            .scheme(scheme)
            .trials(40)
            .seed(2026)
            .run(&program)?;
        println!(
            "  {:<9} {:>5.1}% coverage, mean detection latency {:.1} cycles — {}",
            scheme.name(),
            report.coverage() * 100.0,
            report.mean_detection_latency(),
            scheme.description()
        );
    }
    Ok(())
}
