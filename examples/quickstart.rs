//! Quickstart: assemble a program, run it on the baseline machine and
//! on REESE, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use reese::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little program in the mini ISA: sum the first 1000 integers.
    let program = assemble(
        "        li   t0, 0          # sum\n\
         \n        li   t1, 1000       # n\n\
         loop:    add  t0, t0, t1\n\
         \n        addi t1, t1, -1\n\
         \n        bnez t1, loop\n\
         \n        print t0\n\
         \n        mv   a0, x0\n\
         \n        halt\n",
    )?;

    // Golden functional run.
    let emu = Emulator::new(&program).run(1_000_000)?;
    println!(
        "functional model: {} instructions, output {:?}",
        emu.instructions, emu.output
    );

    // The paper's Table 1 baseline machine.
    let base = PipelineSim::new(PipelineConfig::starting()).run(&program)?;
    println!(
        "baseline:  {} cycles, IPC {:.3}, output {:?}",
        base.cycles(),
        base.ipc(),
        base.output
    );

    // REESE: every instruction executed twice, results compared before
    // commit — with two spare integer ALUs to absorb the extra work.
    let reese = ReeseSim::new(ReeseConfig::starting().with_spare_int_alus(2)).run(&program)?;
    println!(
        "REESE+2ALU: {} cycles, IPC {:.3}, {} comparisons, output {:?}",
        reese.cycles(),
        reese.ipc(),
        reese.stats.comparisons,
        reese.output
    );

    assert_eq!(base.output, reese.output);
    assert_eq!(base.state_digest, reese.state_digest);
    println!(
        "time-redundancy overhead: {:+.1}% cycles",
        (reese.cycles() as f64 / base.cycles() as f64 - 1.0) * 100.0
    );

    // Every registered detection scheme, through the one trait the
    // fault campaign drives: prepare (a no-op for hardware schemes, a
    // duplicating rewrite for the software-only one), then a clean run.
    println!("\nall registered schemes on the same program:");
    let config = ReeseConfig::starting();
    for scheme in Scheme::ALL {
        let backend = reese::faults::schemes::build(scheme, &config);
        let prepared = backend.prepare(&program)?;
        let run = backend.run_limit(&prepared, u64::MAX)?;
        assert_eq!(run.output, base.output, "{scheme} changed the program");
        println!(
            "  {:<9} {:>6} cycles ({:+5.1}%), {:>3} static instructions — {}",
            scheme.name(),
            run.cycles,
            (run.cycles as f64 / base.cycles() as f64 - 1.0) * 100.0,
            prepared.len(),
            scheme.description()
        );
    }
    Ok(())
}
