//! Design-space exploration: the paper's central question — how much
//! spare hardware does REESE need before time redundancy is free? —
//! answered as a sweep over spare ALUs and R-queue sizes.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use reese::core::{ReeseConfig, ReeseSim};
use reese::pipeline::{PipelineConfig, PipelineSim};
use reese::stats::Table;
use reese::workloads::Kernel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = Kernel::Compiler.build_for(100_000);
    let base_cfg = PipelineConfig::starting().with_ruu(32).with_lsq(16);
    let baseline = PipelineSim::new(base_cfg.clone()).run(&program)?;
    println!(
        "baseline (RUU=32): IPC {:.3} over {} instructions\n",
        baseline.ipc(),
        baseline.committed_instructions()
    );

    // Sweep spare integer ALUs.
    let mut t = Table::new(vec!["spare ALUs", "IPC", "overhead", "R-queue peak"]);
    for spares in 0..=4u32 {
        let cfg = ReeseConfig::over(base_cfg.clone()).with_spare_int_alus(spares);
        let r = ReeseSim::new(cfg).run(&program)?;
        t.row(vec![
            spares.to_string(),
            format!("{:.3}", r.ipc()),
            format!("{:+.1}%", (r.ipc() / baseline.ipc() - 1.0) * 100.0),
            r.stats.rqueue_peak.to_string(),
        ]);
    }
    println!("spare-ALU sweep (the paper's question):\n{t}");

    // Sweep the R-stream Queue size.
    let mut t = Table::new(vec!["R-queue size", "IPC", "overhead", "full-queue stalls"]);
    for size in [8usize, 16, 32, 64, 128] {
        let cfg = ReeseConfig::over(base_cfg.clone()).with_rqueue_size(size);
        let r = ReeseSim::new(cfg).run(&program)?;
        t.row(vec![
            size.to_string(),
            format!("{:.3}", r.ipc()),
            format!("{:+.1}%", (r.ipc() / baseline.ipc() - 1.0) * 100.0),
            r.stats.rqueue_full_stalls.to_string(),
        ]);
    }
    println!("R-stream Queue sizing:\n{t}");

    // The §4.3 early-removal optimisation, quantified.
    let held = ReeseSim::new(ReeseConfig::over(base_cfg.clone())).run(&program)?;
    let early = ReeseSim::new(ReeseConfig::over(base_cfg.clone()).with_early_removal(true))
        .run(&program)?;
    println!(
        "early RUU removal (§4.3): held-RUU IPC {:.3} → early-removal IPC {:.3} ({:+.1}%)",
        held.ipc(),
        early.ipc(),
        (early.ipc() / held.ipc() - 1.0) * 100.0
    );
    Ok(())
}
