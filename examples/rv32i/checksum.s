# Rolling checksum over the first 96 squares, in RV32I + M.
#
# Text-only on purpose: with no data segment the program survives the
# flat-binary round trip, so CI can assemble it
# (`reese asm examples/rv32i/checksum.s --isa rv32i -o checksum.bin`)
# and replay a fault campaign on the binary
# (`reese campaign --isa rv32i checksum.bin ...`).

        li      t0, 97          # loop bound (exclusive)
        li      t1, 1           # i
        li      s0, 0           # checksum accumulator
loop:
        mul     t2, t1, t1      # i^2, exercising the M group
        slli    t3, s0, 1       # rotate the accumulator left by one
        srli    s0, s0, 31
        or      s0, t3, s0
        xor     s0, s0, t2      # fold in the square
        addi    t1, t1, 1
        bne     t1, t0, loop

        srli    a0, s0, 1       # keep the printed value non-negative
        li      a7, 1
        ecall                   # print checksum
        li      a7, 93
        li      a0, 0
        ecall                   # exit 0
