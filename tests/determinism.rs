//! Cross-process determinism of seeded fault campaigns.
//!
//! Campaign reports are supposed to be a pure function of (workload,
//! config, seed, trials) — never of the process that produced them.
//! The in-process tests already prove serial-vs-parallel byte
//! identity, but they cannot catch state that varies *between*
//! processes, e.g. the per-process seed of std's hash maps: iterating
//! a `HashMap<Seq, _>` to build any part of a report would pass every
//! in-process test and still differ run to run. `ReeseSim`'s fault
//! bookkeeping is seq-sorted for exactly that reason; this test pins
//! the whole pipeline down by running the released binary twice and
//! byte-comparing the reports.

use std::path::PathBuf;
use std::process::Command;

fn campaign_output(tag: &str) -> Vec<u8> {
    let out: PathBuf = std::env::temp_dir().join(format!(
        "reese-determinism-{}-{tag}.json",
        std::process::id()
    ));
    let status = Command::new(env!("CARGO_BIN_EXE_reese"))
        .args([
            "campaign", "--kernel", "strings", "--trials", "24", "--seed", "20010701", "-j", "2",
            "--out",
        ])
        .arg(&out)
        .status()
        .expect("campaign run");
    assert!(status.success(), "campaign exited with {status}");
    let bytes = std::fs::read(&out).expect("report written");
    let _ = std::fs::remove_file(&out);
    bytes
}

#[test]
fn seeded_campaign_is_byte_identical_across_processes() {
    let first = campaign_output("a");
    let second = campaign_output("b");
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "same seed, different process ⇒ reports must match byte for byte"
    );
}
