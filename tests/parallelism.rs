//! Deterministic-parallelism contract: fanning a campaign or a figure
//! sweep over worker threads changes wall-clock time and nothing else.
//! Every test here compares a `jobs = 1` serial run against parallel
//! runs of the same seed and asserts the scientific output is equal.

use reese::core::ReeseConfig;
use reese::faults::{Campaign, CoverageReport, FaultMix};
use reese::workloads::{Kernel, Suite};
use reese_bench::{Experiment, Variant};

fn campaign_report(kernel: Kernel, jobs: usize) -> CoverageReport {
    Campaign::new(ReeseConfig::starting(), FaultMix::broad())
        .trials(48)
        .seed(0xDE7E12)
        .jobs(jobs)
        .run(&kernel.build(1))
        .expect("campaign runs")
}

#[test]
fn campaign_reports_identical_across_worker_counts() {
    let serial = campaign_report(Kernel::Compiler, 1);
    for jobs in [2, 3, 4, 8] {
        let parallel = campaign_report(Kernel::Compiler, jobs);
        assert_eq!(parallel, serial, "jobs={jobs} must not change the report");
        // Equality covers the aggregate; spot-check the per-trial order
        // too, since the merge is what guarantees it.
        assert_eq!(
            parallel.outcomes, serial.outcomes,
            "trial order must be preserved"
        );
    }
}

#[test]
fn campaign_repeats_are_bit_identical() {
    let a = campaign_report(Kernel::Lisp, 4);
    let b = campaign_report(Kernel::Lisp, 4);
    assert_eq!(a, b, "same seed + same jobs must reproduce exactly");
}

#[test]
fn experiment_grid_identical_across_worker_counts() {
    let suite = Suite::smoke();
    let run = |jobs: usize| {
        Experiment::new(
            "parallel determinism",
            reese::pipeline::PipelineConfig::starting(),
        )
        .variants(&[
            Variant::Baseline,
            Variant::Reese {
                spare_alus: 2,
                spare_muls: 0,
            },
        ])
        .jobs(jobs)
        .run_on(&suite)
    };
    let serial = run(1);
    for jobs in [2, 4] {
        let parallel = run(jobs);
        assert_eq!(
            parallel.ipc, serial.ipc,
            "jobs={jobs} must not change the IPC grid"
        );
        assert_eq!(parallel.kernels, serial.kernels);
        assert_eq!(parallel.variants, serial.variants);
    }
}

#[test]
fn throughput_is_observability_not_science() {
    let serial = campaign_report(Kernel::Compiler, 1);
    let parallel = campaign_report(Kernel::Compiler, 4);
    // Reports compare equal even though the recorded throughput
    // metadata necessarily differs between the two runs.
    assert_eq!(serial, parallel);
    assert_eq!(serial.throughput.as_ref().map(|t| t.jobs), Some(1));
    assert_eq!(parallel.throughput.as_ref().map(|t| t.jobs), Some(4));
    let t = parallel.throughput.expect("recorded");
    assert_eq!(t.items(), 48);
    assert!(t.wall.as_nanos() > 0);
    assert!((0.0..=1.0).contains(&t.utilisation()));
}
