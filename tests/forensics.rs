//! Forensic explanations must be reproducible evidence, not artifacts
//! of how the campaign happened to run.
//!
//! `reese explain` re-simulates one logged trial and narrates its fault
//! propagation. Because the campaign log is byte-identical across
//! worker counts and across the Full/Replay engines (the replay-oracle
//! suite proves that), the explanation derived from any of those logs
//! must be byte-identical too — text and Perfetto trace alike.

use reese::ckpt::Scheme;
use reese::core::ReeseConfig;
use reese::faults::{explain_trial, Campaign, FaultMix, TrialEngine, TrialRef};
use reese::workloads::Kernel;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("reese-forensics-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn explain_is_byte_identical_across_worker_counts_and_engines() {
    let program = Kernel::Database.build(1);
    let cfg = ReeseConfig::starting();
    let dir = scratch("matrix");
    let mut texts: Vec<String> = Vec::new();
    let mut traces: Vec<String> = Vec::new();
    for (tag, jobs, engine) in [
        ("replay-j1", 1, TrialEngine::Replay),
        ("replay-j2", 2, TrialEngine::Replay),
        ("full-j1", 1, TrialEngine::Full),
    ] {
        let log = dir.join(format!("{tag}.jsonl"));
        Campaign::new(cfg.clone(), FaultMix::result_errors_only())
            .trials(8)
            .seed(3)
            .jobs(jobs)
            .engine(engine)
            .outcomes_jsonl(&log)
            .run(&program)
            .unwrap();
        let ex = explain_trial(&cfg, Scheme::Reese, &program, &log, TrialRef::Index(2)).unwrap();
        assert!(ex.outcome.detected, "{tag}: result-mix trial must detect");
        traces.push(ex.to_chrome_json());
        texts.push(ex.text);
    }
    assert_eq!(texts[0], texts[1], "worker count leaked into the text");
    assert_eq!(texts[0], texts[2], "trial engine leaked into the text");
    assert_eq!(traces[0], traces[1], "worker count leaked into the trace");
    assert_eq!(traces[0], traces[2], "trial engine leaked into the trace");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn explain_narrates_detection_and_escape() {
    let program = Kernel::Lisp.build(1);
    let cfg = ReeseConfig::starting();
    let dir = scratch("verdicts");

    // REESE catches result-latch upsets: the narrative must carry the
    // injection, the divergence, and the detecting comparison.
    let caught = dir.join("reese.jsonl");
    Campaign::new(cfg.clone(), FaultMix::result_errors_only())
        .trials(6)
        .seed(5)
        .outcomes_jsonl(&caught)
        .run(&program)
        .unwrap();
    let ex = explain_trial(&cfg, Scheme::Reese, &program, &caught, TrialRef::Index(0)).unwrap();
    assert!(ex.text.contains("verdict: DETECTED"), "{}", ex.text);
    assert!(ex.text.contains("injection: cycle"), "{}", ex.text);
    assert!(
        ex.text.contains("faulted instruction lifecycle"),
        "{}",
        ex.text
    );
    let json = ex.to_chrome_json();
    assert!(json.contains("\"inject"), "missing inject marker");
    assert!(json.contains("\"detect"), "missing detect marker");

    // The unprotected baseline lets the same class of fault through:
    // the narrative must flag the escape (or the lucky mask), never a
    // detection.
    let escaped = dir.join("baseline.jsonl");
    Campaign::new(cfg.clone(), FaultMix::result_errors_only())
        .scheme(Scheme::Baseline)
        .trials(6)
        .seed(5)
        .outcomes_jsonl(&escaped)
        .run(&program)
        .unwrap();
    let ex = explain_trial(
        &cfg,
        Scheme::Baseline,
        &program,
        &escaped,
        TrialRef::Index(0),
    )
    .unwrap();
    assert!(!ex.outcome.detected);
    assert!(
        ex.text.contains("SILENT CORRUPTION") || ex.text.contains("masked"),
        "{}",
        ex.text
    );
    assert!(!ex.text.contains("verdict: DETECTED"), "{}", ex.text);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn explain_resolves_the_same_trial_by_index_and_stable_id() {
    let program = Kernel::Strings.build(1);
    let cfg = ReeseConfig::starting();
    let dir = scratch("ids");
    let log = dir.join("campaign.jsonl");
    Campaign::new(cfg.clone(), FaultMix::broad())
        .trials(10)
        .seed(21)
        .outcomes_jsonl(&log)
        .run(&program)
        .unwrap();
    for trial in [0usize, 4, 9] {
        let by_index =
            explain_trial(&cfg, Scheme::Reese, &program, &log, TrialRef::Index(trial)).unwrap();
        let by_id = explain_trial(
            &cfg,
            Scheme::Reese,
            &program,
            &log,
            TrialRef::Id(by_index.id),
        )
        .unwrap();
        assert_eq!(by_index.trial, by_id.trial);
        assert_eq!(by_index.text, by_id.text);
        assert_eq!(by_index.to_chrome_json(), by_id.to_chrome_json());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
