//! Property-based tests over the whole stack: random programs must
//! behave identically on every machine, random faults must always be
//! caught, and the binary encoding must round-trip anything.

use proptest::prelude::*;
use reese::core::{InjectedFault, ReeseConfig, ReeseSim};
use reese::cpu::Emulator;
use reese::isa::{abi, decode, encode, Instr, Opcode, Program, ProgramBuilder, Reg};
use reese::pipeline::{PipelineConfig, PipelineSim};
use reese::workloads::SyntheticSpec;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..64).prop_map(|r| Reg::from_raw(r).expect("in range"))
}

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    prop::sample::select(Opcode::ALL.to_vec())
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    (arb_opcode(), arb_reg(), arb_reg(), arb_reg(), any::<i32>())
        .prop_map(|(op, rd, rs1, rs2, imm)| Instr { op, rd, rs1, rs2, imm: i64::from(imm) })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode ∘ decode is the identity on canonical instructions.
    #[test]
    fn encoding_round_trips(instr in arb_instr()) {
        let word = encode(&instr).expect("i32 immediates always encode");
        let back = decode(word).expect("encoder output always decodes");
        prop_assert_eq!(back, instr.canonical());
        // And encoding is stable: re-encoding gives the same word.
        prop_assert_eq!(encode(&back).expect("canonical encodes"), word);
    }
}

/// A random but always-terminating program: straight-line ALU/memory
/// ops over a small scratch buffer, wrapped in a bounded countdown loop.
fn arb_program() -> impl Strategy<Value = Program> {
    (any::<u64>(), 4usize..40, 1u32..8).prop_map(|(seed, body, iters)| {
        SyntheticSpec {
            body_len: body,
            iterations: iters,
            seed,
            ..SyntheticSpec::balanced()
        }
        .build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random programs: pipeline == emulator == REESE, architecturally.
    #[test]
    fn machines_agree_on_random_programs(program in arb_program()) {
        let emu = Emulator::new(&program).run(u64::MAX).expect("halts");
        let base = PipelineSim::new(PipelineConfig::starting()).run(&program).expect("runs");
        let reese = ReeseSim::new(ReeseConfig::starting()).run(&program).expect("runs");
        prop_assert_eq!(base.state_digest, emu.state_digest);
        prop_assert_eq!(reese.state_digest, emu.state_digest);
        prop_assert_eq!(&base.output, &emu.output);
        prop_assert_eq!(&reese.output, &emu.output);
        prop_assert_eq!(base.committed_instructions(), emu.instructions);
        prop_assert_eq!(reese.committed_instructions(), emu.instructions);
    }

    /// Any single result-latch bit flip anywhere in a random program is
    /// detected, and the machine recovers to the clean state.
    #[test]
    fn any_result_fault_is_detected(
        seed in any::<u64>(),
        seq_frac in 0.0f64..1.0,
        bit in 0u8..64,
        primary in any::<bool>(),
    ) {
        let program = SyntheticSpec { seed, iterations: 4, ..SyntheticSpec::balanced() }.build();
        let dynlen = Emulator::new(&program).run(u64::MAX).expect("halts").instructions;
        let seq = ((dynlen - 1) as f64 * seq_frac) as u64;
        let fault = if primary {
            InjectedFault::primary(seq, bit)
        } else {
            InjectedFault::redundant(seq, bit)
        };
        let sim = ReeseSim::new(ReeseConfig::starting());
        let clean = sim.run(&program).expect("clean");
        let run = sim.run_with_faults(&program, &[fault], u64::MAX).expect("faulted");
        prop_assert_eq!(run.stats.detections, 1);
        prop_assert_eq!(run.detections[0].seq, seq);
        prop_assert_eq!(run.state_digest, clean.state_digest);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The R-stream Queue commits in program order: outputs of print
    /// instructions appear in the same order as a fully sequential run,
    /// whatever the interleaving of the two streams.
    #[test]
    fn commit_order_is_program_order(n in 2u32..20) {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.li(abi::T0, i64::from(n));
        b.li(abi::T1, 0);
        b.bind(top);
        b.addi(abi::T1, abi::T1, 1);
        b.print(abi::T1);
        b.addi(abi::T0, abi::T0, -1);
        b.bnez(abi::T0, top);
        b.li(abi::A0, 0);
        b.halt();
        let program = b.build().expect("builds");
        let run = ReeseSim::new(ReeseConfig::starting()).run(&program).expect("runs");
        let expected: Vec<i64> = (1..=i64::from(n)).collect();
        prop_assert_eq!(run.output, expected);
    }
}
