//! Randomized-but-deterministic tests over the whole stack: seeded
//! random programs must behave identically on every machine, random
//! faults must always be caught, and the binary encoding must
//! round-trip anything. Every case derives from a fixed SplitMix64
//! stream, so failures reproduce exactly.

use reese::core::{InjectedFault, ReeseConfig, ReeseSim};
use reese::cpu::Emulator;
use reese::isa::ProgramBuilder;
use reese::isa::{abi, decode, encode, Instr, Opcode, Reg};
use reese::pipeline::{PipelineConfig, PipelineSim};
use reese::stats::SplitMix64;
use reese::workloads::SyntheticSpec;

fn random_instr(rng: &mut SplitMix64) -> Instr {
    let op = Opcode::ALL[rng.index(Opcode::ALL.len())];
    let reg = |rng: &mut SplitMix64| Reg::from_raw((rng.next_u64() & 63) as u8).expect("in range");
    let rd = reg(rng);
    let rs1 = reg(rng);
    let rs2 = reg(rng);
    let imm = i64::from(rng.next_u32() as i32);
    Instr {
        op,
        rd,
        rs1,
        rs2,
        imm,
    }
}

/// encode ∘ decode is the identity on canonical instructions.
#[test]
fn encoding_round_trips() {
    let mut rng = SplitMix64::new(0xE0C0DE);
    for _ in 0..256 {
        let instr = random_instr(&mut rng);
        let word = encode(&instr).expect("i32 immediates always encode");
        let back = decode(word).expect("encoder output always decodes");
        assert_eq!(back, instr.canonical());
        // And encoding is stable: re-encoding gives the same word.
        assert_eq!(encode(&back).expect("canonical encodes"), word);
    }
}

/// A random but always-terminating program: straight-line ALU/memory
/// ops over a small scratch buffer, wrapped in a bounded countdown loop.
fn random_program(rng: &mut SplitMix64) -> reese::isa::Program {
    SyntheticSpec {
        body_len: 4 + rng.index(36),
        iterations: 1 + rng.next_u32() % 7,
        seed: rng.next_u64(),
        ..SyntheticSpec::balanced()
    }
    .build()
}

/// Random programs: pipeline == emulator == REESE, architecturally.
#[test]
fn machines_agree_on_random_programs() {
    let mut rng = SplitMix64::new(0xA62EE);
    for _ in 0..24 {
        let program = random_program(&mut rng);
        let emu = Emulator::new(&program).run(u64::MAX).expect("halts");
        let base = PipelineSim::new(PipelineConfig::starting())
            .run(&program)
            .expect("runs");
        let reese = ReeseSim::new(ReeseConfig::starting())
            .run(&program)
            .expect("runs");
        assert_eq!(base.state_digest, emu.state_digest);
        assert_eq!(reese.state_digest, emu.state_digest);
        assert_eq!(&base.output, &emu.output);
        assert_eq!(&reese.output, &emu.output);
        assert_eq!(base.committed_instructions(), emu.instructions);
        assert_eq!(reese.committed_instructions(), emu.instructions);
    }
}

/// Any single result-latch bit flip anywhere in a random program is
/// detected, and the machine recovers to the clean state.
#[test]
fn any_result_fault_is_detected() {
    let mut rng = SplitMix64::new(0xFA_0175);
    for _ in 0..24 {
        let program = SyntheticSpec {
            seed: rng.next_u64(),
            iterations: 4,
            ..SyntheticSpec::balanced()
        }
        .build();
        let dynlen = Emulator::new(&program)
            .run(u64::MAX)
            .expect("halts")
            .instructions;
        let seq = rng.range_u64(0, dynlen);
        let bit = (rng.next_u64() & 63) as u8;
        let fault = if rng.chance(0.5) {
            InjectedFault::primary(seq, bit)
        } else {
            InjectedFault::redundant(seq, bit)
        };
        let sim = ReeseSim::new(ReeseConfig::starting());
        let clean = sim.run(&program).expect("clean");
        let run = sim
            .run_with_faults(&program, &[fault], u64::MAX)
            .expect("faulted");
        assert_eq!(run.stats.detections, 1);
        assert_eq!(run.detections[0].seq, seq);
        assert_eq!(run.state_digest, clean.state_digest);
    }
}

/// The R-stream Queue commits in program order: outputs of print
/// instructions appear in the same order as a fully sequential run,
/// whatever the interleaving of the two streams.
#[test]
fn commit_order_is_program_order() {
    for n in 2u32..20 {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.li(abi::T0, i64::from(n));
        b.li(abi::T1, 0);
        b.bind(top);
        b.addi(abi::T1, abi::T1, 1);
        b.print(abi::T1);
        b.addi(abi::T0, abi::T0, -1);
        b.bnez(abi::T0, top);
        b.li(abi::A0, 0);
        b.halt();
        let program = b.build().expect("builds");
        let run = ReeseSim::new(ReeseConfig::starting())
            .run(&program)
            .expect("runs");
        let expected: Vec<i64> = (1..=i64::from(n)).collect();
        assert_eq!(run.output, expected);
    }
}
