//! Randomized-but-deterministic tests over the whole stack: seeded
//! random programs must behave identically on every machine, random
//! faults must always be caught, and the binary encoding must
//! round-trip anything. Every case derives from a fixed SplitMix64
//! stream, so failures reproduce exactly.

use reese::core::{InjectedFault, ReeseConfig, ReeseSim};
use reese::cpu::Emulator;
use reese::isa::ProgramBuilder;
use reese::isa::{abi, decode, encode, rv32i, Instr, IsaId, Opcode, Reg};
use reese::pipeline::{PipelineConfig, PipelineSim};
use reese::stats::SplitMix64;
use reese::workloads::SyntheticSpec;

fn random_instr_with(op: Opcode, rng: &mut SplitMix64) -> Instr {
    let reg = |rng: &mut SplitMix64| Reg::from_raw((rng.next_u64() & 63) as u8).expect("in range");
    let rd = reg(rng);
    let rs1 = reg(rng);
    let rs2 = reg(rng);
    let imm = i64::from(rng.next_u32() as i32);
    Instr {
        op,
        rd,
        rs1,
        rs2,
        imm,
    }
}

fn random_instr(rng: &mut SplitMix64) -> Instr {
    let op = Opcode::ALL[rng.index(Opcode::ALL.len())];
    random_instr_with(op, rng)
}

/// encode ∘ decode is the identity on canonical instructions.
#[test]
fn encoding_round_trips() {
    let mut rng = SplitMix64::new(0xE0C0DE);
    for _ in 0..256 {
        let instr = random_instr(&mut rng);
        let word = encode(&instr).expect("i32 immediates always encode");
        let back = decode(word).expect("encoder output always decodes");
        assert_eq!(back, instr.canonical());
        // And encoding is stable: re-encoding gives the same word.
        assert_eq!(encode(&back).expect("canonical encodes"), word);
    }
}

/// Every native opcode round-trips through the 8-byte encoder on
/// randomized operands — per-opcode, so a decoder hole on a rarely
/// drawn opcode cannot hide behind uniform sampling.
#[test]
fn every_native_opcode_round_trips() {
    let mut rng = SplitMix64::new(0x0E5A_0001);
    for &op in Opcode::ALL {
        for _ in 0..64 {
            let instr = random_instr_with(op, &mut rng);
            let word = encode(&instr).unwrap_or_else(|e| panic!("{op:?} must encode: {e:?}"));
            let back = decode(word).unwrap_or_else(|e| panic!("{op:?} must decode: {e:?}"));
            assert_eq!(back, instr.canonical(), "{op:?}");
            assert_eq!(encode(&back).expect("canonical encodes"), word, "{op:?}");
        }
    }
}

/// A random instruction with operands drawn from the field ranges the
/// RV32I encoding gives `op`, or `None` for opcodes with no encoding.
fn random_rv32_instr(op: Opcode, rng: &mut SplitMix64) -> Option<Instr> {
    use Opcode::*;
    let x = |rng: &mut SplitMix64| Reg::x((rng.next_u64() & 31) as u8);
    // Signed 12-bit immediate (I- and S-type fields).
    let i12 = |rng: &mut SplitMix64| (rng.next_u64() as i64) % 2048;
    Some(match op {
        // U-type: any 32-bit value with a clear low 12 bits.
        Li | Auipc => {
            let imm = i64::from((rng.next_u32() & 0xFFFF_F000) as i32);
            Instr::rri(op, x(rng), Reg::ZERO, imm)
        }
        // J-type: even 21-bit signed offset.
        Jal => Instr::rri(
            op,
            x(rng),
            Reg::ZERO,
            ((rng.next_u64() as i64) % (1 << 20)) & !1,
        ),
        Jalr => Instr::rri(op, x(rng), x(rng), i12(rng)),
        // B-type: even 13-bit signed offset.
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            Instr::branch(op, x(rng), x(rng), ((rng.next_u64() as i64) % 4096) & !1)
        }
        Lb | Lh | Lw | Lbu | Lhu => Instr::load(op, x(rng), x(rng), i12(rng)),
        Sb | Sh | Sw => Instr::store(op, x(rng), x(rng), i12(rng)),
        Slli | Srli | Srai => Instr::rri(op, x(rng), x(rng), (rng.next_u64() & 31) as i64),
        Addi | Slti | Sltiu | Xori | Ori | Andi => Instr::rri(op, x(rng), x(rng), i12(rng)),
        Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And | Mul | Div | Divu | Rem
        | Remu => Instr::rrr(op, x(rng), x(rng), x(rng)),
        Nop => Instr::nop(),
        Ecall | Ebreak => Instr { op, ..Instr::nop() },
        // 64-bit memory ops, FP, and native system/constant forms.
        Lwu | Ld | Sd | Fld | Fsd | Lih | Halt | Print | Fadd | Fsub | Fmul | Fdiv | Fsqrt
        | Fmin | Fmax | Feq | Flt | Fle | Fcvtif | Fcvtfi | Fmvif | Fmvfi => return None,
    })
}

/// Every opcode either round-trips through the 4-byte RV32I encoder on
/// randomized in-range operands, or is rejected as having no encoding —
/// and the split between the two is exhaustive over [`Opcode::ALL`].
#[test]
fn every_rv32i_opcode_round_trips_or_is_rejected() {
    let mut rng = SplitMix64::new(0x0E5A_0002);
    let mut encodable = 0;
    for &op in Opcode::ALL {
        match random_rv32_instr(op, &mut rng) {
            None => {
                let i = random_instr_with(op, &mut rng);
                assert!(
                    rv32i::encode_word(&i).is_err(),
                    "{op:?} has no RV32I encoding and must be rejected"
                );
            }
            Some(_) => {
                encodable += 1;
                for _ in 0..64 {
                    let instr = random_rv32_instr(op, &mut rng).expect("encodable");
                    let word = rv32i::encode_word(&instr)
                        .unwrap_or_else(|e| panic!("{op:?} must encode: {e:?}"));
                    let back = rv32i::decode_word(word)
                        .unwrap_or_else(|e| panic!("{op:?} must decode: {e:?}"));
                    assert_eq!(back, instr.canonical(), "{op:?}");
                    assert_eq!(
                        rv32i::encode_word(&back).expect("canonical encodes"),
                        word,
                        "{op:?}: re-encoding must be stable"
                    );
                }
            }
        }
    }
    // The base set plus the M group: a silent shrink of the encodable
    // set would weaken every other case in this test.
    assert_eq!(encodable, 45, "RV32I+M encodable opcode count");
}

/// One instruction of every encodable opcode, pushed through each ISA
/// frontend: the binary image decodes back to the canonical text, and
/// the disassembly listing carries one correctly-addressed line per
/// instruction.
#[test]
fn frontends_round_trip_and_disassemble_every_opcode() {
    let mut rng = SplitMix64::new(0x0E5A_0003);
    for isa in IsaId::ALL {
        let text: Vec<Instr> = Opcode::ALL
            .iter()
            .filter_map(|&op| match isa {
                IsaId::Native => Some(random_instr_with(op, &mut rng)),
                IsaId::Rv32i => random_rv32_instr(op, &mut rng),
            })
            .collect();
        let frontend = isa.frontend();
        let image = frontend.encode_text(&text).expect("in-range operands");
        assert_eq!(image.len() as u64, text.len() as u64 * isa.inst_size());
        let decoded = frontend
            .decode_text(&image)
            .expect("encoder output decodes");
        let canonical: Vec<Instr> = text.iter().map(|i| i.canonical()).collect();
        assert_eq!(decoded, canonical, "{isa}: binary round trip");
        let listing = frontend.disassemble_text(&text, 0x1000);
        assert_eq!(listing.lines().count(), text.len(), "{isa}");
        for (idx, line) in listing.lines().enumerate() {
            let addr = 0x1000 + idx as u64 * isa.inst_size();
            assert!(
                line.starts_with(&format!("{addr:#010x}:")),
                "{isa}: line {idx} must carry its address: {line}"
            );
        }
    }
}

/// A random but always-terminating program: straight-line ALU/memory
/// ops over a small scratch buffer, wrapped in a bounded countdown loop.
fn random_program(rng: &mut SplitMix64) -> reese::isa::Program {
    SyntheticSpec {
        body_len: 4 + rng.index(36),
        iterations: 1 + rng.next_u32() % 7,
        seed: rng.next_u64(),
        ..SyntheticSpec::balanced()
    }
    .build()
}

/// Random programs: pipeline == emulator == REESE, architecturally.
#[test]
fn machines_agree_on_random_programs() {
    let mut rng = SplitMix64::new(0xA62EE);
    for _ in 0..24 {
        let program = random_program(&mut rng);
        let emu = Emulator::new(&program).run(u64::MAX).expect("halts");
        let base = PipelineSim::new(PipelineConfig::starting())
            .run(&program)
            .expect("runs");
        let reese = ReeseSim::new(ReeseConfig::starting())
            .run(&program)
            .expect("runs");
        assert_eq!(base.state_digest, emu.state_digest);
        assert_eq!(reese.state_digest, emu.state_digest);
        assert_eq!(&base.output, &emu.output);
        assert_eq!(&reese.output, &emu.output);
        assert_eq!(base.committed_instructions(), emu.instructions);
        assert_eq!(reese.committed_instructions(), emu.instructions);
    }
}

/// Any single result-latch bit flip anywhere in a random program is
/// detected, and the machine recovers to the clean state.
#[test]
fn any_result_fault_is_detected() {
    let mut rng = SplitMix64::new(0xFA_0175);
    for _ in 0..24 {
        let program = SyntheticSpec {
            seed: rng.next_u64(),
            iterations: 4,
            ..SyntheticSpec::balanced()
        }
        .build();
        let dynlen = Emulator::new(&program)
            .run(u64::MAX)
            .expect("halts")
            .instructions;
        let seq = rng.range_u64(0, dynlen);
        let bit = (rng.next_u64() & 63) as u8;
        let fault = if rng.chance(0.5) {
            InjectedFault::primary(seq, bit)
        } else {
            InjectedFault::redundant(seq, bit)
        };
        let sim = ReeseSim::new(ReeseConfig::starting());
        let clean = sim.run(&program).expect("clean");
        let run = sim
            .run_with_faults(&program, &[fault], u64::MAX)
            .expect("faulted");
        assert_eq!(run.stats.detections, 1);
        assert_eq!(run.detections[0].seq, seq);
        assert_eq!(run.state_digest, clean.state_digest);
    }
}

/// The R-stream Queue commits in program order: outputs of print
/// instructions appear in the same order as a fully sequential run,
/// whatever the interleaving of the two streams.
#[test]
fn commit_order_is_program_order() {
    for n in 2u32..20 {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.li(abi::T0, i64::from(n));
        b.li(abi::T1, 0);
        b.bind(top);
        b.addi(abi::T1, abi::T1, 1);
        b.print(abi::T1);
        b.addi(abi::T0, abi::T0, -1);
        b.bnez(abi::T0, top);
        b.li(abi::A0, 0);
        b.halt();
        let program = b.build().expect("builds");
        let run = ReeseSim::new(ReeseConfig::starting())
            .run(&program)
            .expect("runs");
        let expected: Vec<i64> = (1..=i64::from(n)).collect();
        assert_eq!(run.output, expected);
    }
}
