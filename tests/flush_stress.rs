//! Seeded flush-during-in-flight-R stress test.
//!
//! A detection mismatch flushes the R-stream Queue while redundant
//! re-executions may still be in flight on the functional units (their
//! completion times live in the R-queue's completion wheel / completion
//! heap). A stale completion entry surviving the flush would mark a
//! *new* post-flush queue entry complete with a *pre-flush* result —
//! silently corrupting the comparison. This test drives many seeded
//! mismatch flushes through both schedulers and replays the trace-event
//! stream to prove the invariant: after a flush, every redundant-stream
//! writeback is matched by a redundant-stream issue that happened after
//! that same flush.

use reese::core::{InjectedFault, ReeseConfig, ReeseSim, SchedulerMode};
use reese::stats::SplitMix64;
use reese::trace::{CycleState, Observer, Stage, Stream, TraceEvent};
use reese::workloads::Kernel;
use std::collections::HashSet;

/// An observer that just records every lifecycle event.
struct EventLog {
    events: Vec<TraceEvent>,
}

impl Observer for EventLog {
    const ENABLED: bool = true;

    fn event(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    fn cycle(&mut self, _cycle: u64, _state: &CycleState) {}

    fn idle_skip(&mut self, _from: u64, _to: u64, _state: &CycleState) {}
}

/// Replays the event stream and asserts no redundant writeback lands
/// without a post-flush redundant issue for the same seq. Returns the
/// number of flushes seen so the caller can assert the test actually
/// exercised the path.
fn check_no_stale_r_completions(events: &[TraceEvent]) -> usize {
    let mut in_flight: HashSet<u64> = HashSet::new();
    let mut flushes = 0;
    for ev in events {
        match (ev.stage, ev.stream) {
            (Stage::Flush, _) => {
                // The squash empties the R-queue and the FU pipeline:
                // every in-flight redundant execution dies with it.
                in_flight.clear();
                flushes += 1;
            }
            (Stage::Issue, Stream::Redundant) => {
                assert!(
                    in_flight.insert(ev.seq),
                    "seq {} R-issued twice with no intervening writeback (cycle {})",
                    ev.seq,
                    ev.cycle
                );
            }
            (Stage::Writeback, Stream::Redundant) => {
                assert!(
                    in_flight.remove(&ev.seq),
                    "stale R completion: seq {} wrote back at cycle {} \
                     with no post-flush R issue",
                    ev.seq,
                    ev.cycle
                );
            }
            _ => {}
        }
    }
    flushes
}

fn run_and_check(cfg: ReeseConfig, faults: &[InjectedFault]) -> usize {
    let program = Kernel::Lisp.build(1);
    let mut log = EventLog { events: Vec::new() };
    // Faulty runs may end in a permanent-fault error if the seeded
    // stream hits the same seq twice; the event log is still valid up
    // to that point, so ignore the result itself.
    let _ = ReeseSim::new(cfg).run_with_faults_observed(&program, faults, 0, 50_000, &mut log);
    check_no_stale_r_completions(&log.events)
}

/// Draws a seeded batch of redundant-stream faults: each one forces a
/// comparison mismatch, hence a detection flush, at a pseudo-random
/// point in the run.
fn seeded_faults(seed: u64, n: usize, span: u64) -> Vec<InjectedFault> {
    let mut rng = SplitMix64::new(seed);
    let mut seqs = HashSet::new();
    let mut faults = Vec::new();
    while faults.len() < n {
        let seq = rng.range_u64(10, 10 + span);
        let bit = (rng.next_u64() & 63) as u8;
        // Distinct seqs: re-faulting the same seq reads as a permanent
        // fault and stops the machine early.
        if seqs.insert(seq) {
            faults.push(InjectedFault::redundant(seq, bit));
        }
    }
    faults
}

#[test]
fn flushes_leave_no_stale_r_completions_in_either_mode() {
    for mode in [SchedulerMode::Scan, SchedulerMode::EventDriven] {
        for seed in [1u64, 0xFA017, 0xDEAD_BEEF] {
            let faults = seeded_faults(seed, 20, 20_000);
            let flushes = run_and_check(ReeseConfig::starting().with_scheduler(mode), &faults);
            assert!(
                flushes >= 5,
                "seed {seed:#x} under {mode:?} produced only {flushes} flushes — \
                 the stress test is not stressing"
            );
        }
    }
}

#[test]
fn flushes_with_tiny_queue_and_early_removal() {
    // A tiny queue keeps entries migrating right up against the flush
    // point; early removal makes migration destructive, so a stale
    // completion would have nothing to fall back on.
    for mode in [SchedulerMode::Scan, SchedulerMode::EventDriven] {
        let faults = seeded_faults(7, 12, 10_000);
        let cfg = ReeseConfig::starting()
            .with_scheduler(mode)
            .with_rqueue_size(8)
            .with_early_removal(true);
        let flushes = run_and_check(cfg, &faults);
        assert!(flushes >= 3, "{mode:?}: only {flushes} flushes");
    }
}
