//! The golden equivalence property: every kernel must produce identical
//! architectural results on the functional emulator, the baseline
//! out-of-order pipeline, and the REESE machine (in both RUU-removal
//! modes) — the timing models may disagree about *when*, never about
//! *what*.

use reese::core::{ReeseConfig, ReeseSim};
use reese::cpu::Emulator;
use reese::pipeline::{PipelineConfig, PipelineSim};
use reese::workloads::Kernel;

#[test]
fn all_kernels_agree_across_all_three_machines() {
    for kernel in Kernel::ALL {
        let program = kernel.build(1);
        let emu = Emulator::new(&program)
            .run(u64::MAX)
            .expect("emulator halts");
        let base = PipelineSim::new(PipelineConfig::starting())
            .run(&program)
            .unwrap_or_else(|e| panic!("{kernel} baseline: {e}"));
        let reese = ReeseSim::new(ReeseConfig::starting())
            .run(&program)
            .unwrap_or_else(|e| panic!("{kernel} REESE: {e}"));
        let reese_early = ReeseSim::new(ReeseConfig::starting().with_early_removal(true))
            .run(&program)
            .unwrap_or_else(|e| panic!("{kernel} REESE/early: {e}"));

        assert_eq!(
            base.committed_instructions(),
            emu.instructions,
            "{kernel}: baseline count"
        );
        assert_eq!(
            reese.committed_instructions(),
            emu.instructions,
            "{kernel}: REESE count"
        );
        assert_eq!(
            reese_early.committed_instructions(),
            emu.instructions,
            "{kernel}: REESE/early count"
        );
        assert_eq!(base.output, emu.output, "{kernel}: baseline output");
        assert_eq!(reese.output, emu.output, "{kernel}: REESE output");
        assert_eq!(
            base.state_digest, emu.state_digest,
            "{kernel}: baseline digest"
        );
        assert_eq!(
            reese.state_digest, emu.state_digest,
            "{kernel}: REESE digest"
        );
        assert_eq!(
            reese_early.state_digest, emu.state_digest,
            "{kernel}: early digest"
        );
    }
}

#[test]
fn reese_compares_every_committed_instruction() {
    for kernel in Kernel::ALL {
        let program = kernel.build(1);
        let r = ReeseSim::new(ReeseConfig::starting())
            .run(&program)
            .expect("runs");
        assert_eq!(
            r.stats.comparisons,
            r.committed_instructions(),
            "{kernel}: full duplication means one comparison per commit"
        );
        assert_eq!(
            r.stats.r_skipped, 0,
            "{kernel}: nothing skipped at period 1"
        );
        assert!(
            r.detections.is_empty(),
            "{kernel}: no faults, no detections"
        );
    }
}

#[test]
fn redundancy_is_never_faster_than_baseline_on_the_same_hardware() {
    for kernel in Kernel::ALL {
        let program = kernel.build(1);
        let base = PipelineSim::new(PipelineConfig::starting())
            .run(&program)
            .expect("runs");
        let reese = ReeseSim::new(ReeseConfig::starting())
            .run(&program)
            .expect("runs");
        assert!(
            reese.cycles() >= base.cycles(),
            "{kernel}: REESE {} cycles < baseline {} cycles",
            reese.cycles(),
            base.cycles()
        );
    }
}

#[test]
fn runs_are_bit_identical_across_repeats() {
    let program = Kernel::Gameplay.build(1);
    let a = ReeseSim::new(ReeseConfig::starting())
        .run(&program)
        .expect("runs");
    let b = ReeseSim::new(ReeseConfig::starting())
        .run(&program)
        .expect("runs");
    assert_eq!(a, b, "simulation must be deterministic");
}

#[test]
fn instruction_limited_runs_agree_on_prefix_behaviour() {
    let program = Kernel::Strings.build(2);
    let base = PipelineSim::new(PipelineConfig::starting())
        .run_limit(&program, 20_000)
        .expect("runs");
    let reese = ReeseSim::new(ReeseConfig::starting())
        .run_limit(&program, 20_000)
        .expect("runs");
    assert!(base.committed_instructions() >= 20_000);
    assert!(reese.committed_instructions() >= 20_000);
    // Both machines committed the same program prefix, so any output
    // emitted so far must agree.
    assert_eq!(base.output, reese.output);
}

#[test]
fn fp_workload_agrees_across_machines() {
    let program = reese::workloads::extras::floatmath(1);
    let emu = Emulator::new(&program).run(u64::MAX).expect("halts");
    let base = PipelineSim::new(PipelineConfig::starting())
        .run(&program)
        .expect("runs");
    let reese = ReeseSim::new(ReeseConfig::starting())
        .run(&program)
        .expect("runs");
    assert_eq!(base.state_digest, emu.state_digest);
    assert_eq!(reese.state_digest, emu.state_digest);
    assert_eq!(base.output, emu.output);
    assert_eq!(reese.output, emu.output);
    // The FP units must actually have been used.
    let fp_busy: f64 = base
        .stats
        .fu_utilisation
        .iter()
        .filter(|(c, _)| {
            matches!(
                c,
                reese::isa::FuClass::FpAlu | reese::isa::FuClass::FpMulDiv
            )
        })
        .map(|(_, u)| *u)
        .sum();
    assert!(fp_busy > 0.01, "FP units idle on an FP workload");
}

#[test]
fn fast_forward_preserves_architectural_results() {
    let program = reese::workloads::Kernel::Compiler.build(1);
    let full = PipelineSim::new(PipelineConfig::starting())
        .run(&program)
        .expect("runs");
    let total = full.committed_instructions();
    let skip = total / 2;
    let region = PipelineSim::new(PipelineConfig::starting())
        .run_region(&program, skip, u64::MAX)
        .expect("runs");
    // The timed region commits exactly the remaining instructions and
    // lands on the same final architectural state.
    assert_eq!(region.committed_instructions(), total - skip);
    assert_eq!(region.state_digest, full.state_digest);
    assert!(
        region.cycles() < full.cycles(),
        "skipping work must save cycles"
    );

    let reese_region = ReeseSim::new(ReeseConfig::starting())
        .run_region(&program, skip, u64::MAX)
        .expect("runs");
    assert_eq!(reese_region.committed_instructions(), total - skip);
    assert_eq!(reese_region.state_digest, full.state_digest);
}

#[test]
fn sorting_workload_agrees_across_machines() {
    // Quicksort's data-dependent control flow is the hardest stress for
    // the replay window and LSQ forwarding paths.
    let program = reese::workloads::extras::sorting(1);
    let emu = Emulator::new(&program).run(u64::MAX).expect("halts");
    let base = PipelineSim::new(PipelineConfig::starting())
        .run(&program)
        .expect("runs");
    let reese = ReeseSim::new(ReeseConfig::starting())
        .run(&program)
        .expect("runs");
    assert_eq!(base.state_digest, emu.state_digest);
    assert_eq!(reese.state_digest, emu.state_digest);
    assert_eq!(base.output, emu.output);
    assert_eq!(reese.output, emu.output);
    assert!(
        base.stats.loads_forwarded > 0,
        "the range stack must forward"
    );
}
