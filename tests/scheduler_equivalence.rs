//! Scan vs event-driven scheduler equivalence.
//!
//! The event-driven cycle loop (ready queue + completion wheels + idle
//! skipping) is an implementation change only: on every workload kernel
//! and every machine model it must produce results — including every
//! per-cycle statistic — bit-identical to the per-cycle scan it
//! replaced.

use reese::ckpt::Scheme;
use reese::core::{DuplexSim, ReeseConfig, ReeseSim, SchedulerMode};
use reese::faults::{schemes, Campaign, FaultMix};
use reese::pipeline::{PipelineConfig, PipelineSim};
use reese::workloads::Kernel;

fn scan_pipeline() -> PipelineConfig {
    PipelineConfig::starting().with_scheduler(SchedulerMode::Scan)
}

fn event_pipeline() -> PipelineConfig {
    PipelineConfig::starting().with_scheduler(SchedulerMode::EventDriven)
}

#[test]
fn baseline_modes_agree_on_all_kernels() {
    for kernel in Kernel::ALL {
        let program = kernel.build(1);
        let scan = PipelineSim::new(scan_pipeline()).run(&program).unwrap();
        let event = PipelineSim::new(event_pipeline()).run(&program).unwrap();
        assert_eq!(scan, event, "{kernel}: baseline modes diverged");
    }
}

#[test]
fn reese_modes_agree_on_all_kernels() {
    for kernel in Kernel::ALL {
        let program = kernel.build(1);
        let scan = ReeseSim::new(ReeseConfig::starting().with_scheduler(SchedulerMode::Scan))
            .run(&program)
            .unwrap();
        let event =
            ReeseSim::new(ReeseConfig::starting().with_scheduler(SchedulerMode::EventDriven))
                .run(&program)
                .unwrap();
        assert_eq!(scan, event, "{kernel}: REESE modes diverged");
    }
}

#[test]
fn reese_modes_agree_with_spares_and_partial_duplication() {
    // Exercise the R-priority path (tiny queue, low high-water mark) and
    // the skip_r bookkeeping in both modes.
    let program = Kernel::Lisp.build(1);
    for cfg in [
        ReeseConfig::starting().with_spare_int_alus(2),
        ReeseConfig::starting().with_rqueue_size(8),
        ReeseConfig::starting().with_duplication_period(3),
        ReeseConfig::starting().with_early_removal(true),
    ] {
        let scan = ReeseSim::new(cfg.clone().with_scheduler(SchedulerMode::Scan))
            .run(&program)
            .unwrap();
        let event = ReeseSim::new(cfg.clone().with_scheduler(SchedulerMode::EventDriven))
            .run(&program)
            .unwrap();
        assert_eq!(scan, event, "modes diverged on {cfg:?}");
    }
}

#[test]
fn r_issue_accounting_agrees_and_is_exercised() {
    // `r_tried` / `r_missed` used to be metrics-only (machine-local, not
    // part of result equality), so the event scheduler could drift from
    // the scan without any oracle noticing. They now live in
    // `ReeseStats` and must match bit-for-bit — including the bulk
    // accounting performed for skipped idle cycles. A contended machine
    // (narrow pipeline, one spare-less FU pool, big queue) guarantees
    // misses actually occur, so the assertion is not vacuous.
    let program = Kernel::Imaging.build(1);
    let cfg = ReeseConfig::starting().with_rqueue_size(64);
    let scan = ReeseSim::new(cfg.clone().with_scheduler(SchedulerMode::Scan))
        .run(&program)
        .unwrap();
    let event = ReeseSim::new(cfg.with_scheduler(SchedulerMode::EventDriven))
        .run(&program)
        .unwrap();
    assert_eq!(
        (scan.stats.r_tried, scan.stats.r_missed),
        (event.stats.r_tried, event.stats.r_missed),
        "R-issue accounting diverged across modes"
    );
    assert!(scan.stats.r_tried > 0, "workload never exercised R issue");
    assert!(
        scan.stats.r_missed > 0,
        "workload too idle: no missed R-issue opportunities to compare"
    );
    assert_eq!(
        scan.stats.r_tried - scan.stats.r_issued,
        scan.stats.r_missed,
        "tried/issued/missed must stay internally consistent"
    );
    assert_eq!(scan, event);
}

#[test]
fn duplex_modes_agree_on_all_kernels() {
    for kernel in Kernel::ALL {
        let program = kernel.build(1);
        let scan = DuplexSim::new(scan_pipeline()).run(&program).unwrap();
        let event = DuplexSim::new(event_pipeline()).run(&program).unwrap();
        assert_eq!(scan, event, "{kernel}: duplex modes diverged");
    }
}

#[test]
fn trait_backends_match_direct_simulators_on_all_kernels() {
    // The DetectionScheme refactor must be a pure re-plumbing: the
    // baseline/reese/duplex backends are the same machines the CLI and
    // campaign drove directly before the trait existed, so their clean
    // runs must agree with the direct simulators field for field, in
    // both scheduler modes, on every kernel.
    for mode in [SchedulerMode::Scan, SchedulerMode::EventDriven] {
        let cfg = ReeseConfig::starting().with_scheduler(mode);
        for kernel in Kernel::ALL {
            let program = kernel.build(1);

            let direct = PipelineSim::new(cfg.pipeline.clone())
                .run(&program)
                .unwrap();
            let via = schemes::build(Scheme::Baseline, &cfg)
                .run_limit(&program, u64::MAX)
                .unwrap();
            assert_eq!(
                (via.cycles, via.committed, &via.output, via.state_digest),
                (
                    direct.stats.cycles,
                    direct.stats.committed,
                    &direct.output,
                    direct.state_digest
                ),
                "{kernel}/{mode:?}: baseline trait run diverged"
            );

            let direct = ReeseSim::new(cfg.clone()).run(&program).unwrap();
            let via = schemes::build(Scheme::Reese, &cfg)
                .run_limit(&program, u64::MAX)
                .unwrap();
            assert_eq!(
                (via.cycles, via.committed, &via.output, via.state_digest),
                (
                    direct.cycles(),
                    direct.committed_instructions(),
                    &direct.output,
                    direct.state_digest
                ),
                "{kernel}/{mode:?}: REESE trait run diverged"
            );

            let direct = DuplexSim::new(cfg.pipeline.clone()).run(&program).unwrap();
            let via = schemes::build(Scheme::Duplex, &cfg)
                .run_limit(&program, u64::MAX)
                .unwrap();
            assert_eq!(
                (via.cycles, via.committed, &via.output, via.state_digest),
                (
                    direct.cycles(),
                    direct.committed_instructions(),
                    &direct.output,
                    direct.state_digest
                ),
                "{kernel}/{mode:?}: duplex trait run diverged"
            );
        }
    }
}

#[test]
fn campaigns_agree_across_modes_for_every_scheme() {
    // The scheduler mode is a timing-implementation detail; every
    // registered backend (including the ones that run the baseline
    // pipeline under the hood) must report identical campaigns in both.
    let program = Kernel::Strings.build(1);
    for scheme in Scheme::ALL {
        let run = |mode| {
            Campaign::new(
                ReeseConfig::starting().with_scheduler(mode),
                FaultMix::result_errors_only(),
            )
            .scheme(scheme)
            .trials(12)
            .seed(0xFA017)
            .max_instructions(5_000)
            .jobs(2)
            .run(&program)
            .unwrap()
        };
        let scan = run(SchedulerMode::Scan);
        let event = run(SchedulerMode::EventDriven);
        assert_eq!(scan, event, "{scheme}: campaign diverged across modes");
        assert_eq!(
            scan.to_csv(),
            event.to_csv(),
            "{scheme}: serialisation diverged across modes"
        );
    }
}

#[test]
fn fault_campaign_reports_agree_across_modes() {
    // A full injection campaign drives detection flushes at arbitrary
    // points; the per-trial outcomes (detection, latency, recovery
    // cycles, state cleanliness) must be identical in both modes.
    let program = Kernel::Strings.build(1);
    let run = |mode| {
        Campaign::new(
            ReeseConfig::starting().with_scheduler(mode),
            FaultMix::broad(),
        )
        .trials(40)
        .seed(0xFA017)
        .max_instructions(5_000)
        .jobs(2)
        .run(&program)
        .unwrap()
    };
    let scan = run(SchedulerMode::Scan);
    let event = run(SchedulerMode::EventDriven);
    assert_eq!(scan, event, "campaign reports diverged across modes");
    assert!(event.trials() == 40);
}
