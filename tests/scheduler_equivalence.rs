//! Scan vs event-driven scheduler equivalence.
//!
//! The event-driven cycle loop (ready queue + completion wheels + idle
//! skipping) is an implementation change only: on every workload kernel
//! and every machine model it must produce results — including every
//! per-cycle statistic — bit-identical to the per-cycle scan it
//! replaced.

use reese::core::{DuplexSim, ReeseConfig, ReeseSim, SchedulerMode};
use reese::faults::{Campaign, FaultMix};
use reese::pipeline::{PipelineConfig, PipelineSim};
use reese::workloads::Kernel;

fn scan_pipeline() -> PipelineConfig {
    PipelineConfig::starting().with_scheduler(SchedulerMode::Scan)
}

fn event_pipeline() -> PipelineConfig {
    PipelineConfig::starting().with_scheduler(SchedulerMode::EventDriven)
}

#[test]
fn baseline_modes_agree_on_all_kernels() {
    for kernel in Kernel::ALL {
        let program = kernel.build(1);
        let scan = PipelineSim::new(scan_pipeline()).run(&program).unwrap();
        let event = PipelineSim::new(event_pipeline()).run(&program).unwrap();
        assert_eq!(scan, event, "{kernel}: baseline modes diverged");
    }
}

#[test]
fn reese_modes_agree_on_all_kernels() {
    for kernel in Kernel::ALL {
        let program = kernel.build(1);
        let scan = ReeseSim::new(ReeseConfig::starting().with_scheduler(SchedulerMode::Scan))
            .run(&program)
            .unwrap();
        let event =
            ReeseSim::new(ReeseConfig::starting().with_scheduler(SchedulerMode::EventDriven))
                .run(&program)
                .unwrap();
        assert_eq!(scan, event, "{kernel}: REESE modes diverged");
    }
}

#[test]
fn reese_modes_agree_with_spares_and_partial_duplication() {
    // Exercise the R-priority path (tiny queue, low high-water mark) and
    // the skip_r bookkeeping in both modes.
    let program = Kernel::Lisp.build(1);
    for cfg in [
        ReeseConfig::starting().with_spare_int_alus(2),
        ReeseConfig::starting().with_rqueue_size(8),
        ReeseConfig::starting().with_duplication_period(3),
        ReeseConfig::starting().with_early_removal(true),
    ] {
        let scan = ReeseSim::new(cfg.clone().with_scheduler(SchedulerMode::Scan))
            .run(&program)
            .unwrap();
        let event = ReeseSim::new(cfg.clone().with_scheduler(SchedulerMode::EventDriven))
            .run(&program)
            .unwrap();
        assert_eq!(scan, event, "modes diverged on {cfg:?}");
    }
}

#[test]
fn duplex_modes_agree_on_all_kernels() {
    for kernel in Kernel::ALL {
        let program = kernel.build(1);
        let scan = DuplexSim::new(scan_pipeline()).run(&program).unwrap();
        let event = DuplexSim::new(event_pipeline()).run(&program).unwrap();
        assert_eq!(scan, event, "{kernel}: duplex modes diverged");
    }
}

#[test]
fn fault_campaign_reports_agree_across_modes() {
    // A full injection campaign drives detection flushes at arbitrary
    // points; the per-trial outcomes (detection, latency, recovery
    // cycles, state cleanliness) must be identical in both modes.
    let program = Kernel::Strings.build(1);
    let run = |mode| {
        Campaign::new(
            ReeseConfig::starting().with_scheduler(mode),
            FaultMix::broad(),
        )
        .trials(40)
        .seed(0xFA017)
        .max_instructions(5_000)
        .jobs(2)
        .run(&program)
        .unwrap()
    };
    let scan = run(SchedulerMode::Scan);
    let event = run(SchedulerMode::EventDriven);
    assert_eq!(scan, event, "campaign reports diverged across modes");
    assert!(event.trials() == 40);
}
