//! End-to-end fault-tolerance properties: the coverage REESE promises
//! in §4.2, measured rather than argued.

use reese::core::{InjectedFault, ReeseConfig, ReeseError, ReeseSim};
use reese::faults::{Campaign, FaultClass, FaultMix};
use reese::workloads::Kernel;

#[test]
fn every_result_error_is_detected_and_recovered() {
    // One fault per kernel, spread over positions, bits, and streams.
    for (i, kernel) in Kernel::ALL.iter().enumerate() {
        let program = kernel.build(1);
        let sim = ReeseSim::new(ReeseConfig::starting());
        let clean = sim.run(&program).expect("clean run");
        let seq = 100 + 37 * i as u64;
        let bit = (7 * i) as u8 % 64;
        let fault = if i % 2 == 0 {
            InjectedFault::primary(seq, bit)
        } else {
            InjectedFault::redundant(seq, bit)
        };
        let run = sim
            .run_with_faults(&program, &[fault], u64::MAX)
            .expect("faulted run");
        assert_eq!(run.stats.detections, 1, "{kernel}: the flip must be caught");
        assert_eq!(
            run.detections[0].seq, seq,
            "{kernel}: caught at the right instruction"
        );
        assert_eq!(
            run.state_digest, clean.state_digest,
            "{kernel}: state restored"
        );
        assert_eq!(run.output, clean.output, "{kernel}: output unperturbed");
        // One flush's direct cost is small, but the replay perturbs the
        // global branch history, which can swing total cycles slightly
        // in either direction. Only assert the run stays in a tight
        // band around the clean run.
        let band = clean.cycles() / 100 + 200;
        assert!(
            run.cycles().abs_diff(clean.cycles()) <= band,
            "{kernel}: faulted run {} vs clean {} outside the recovery band",
            run.cycles(),
            clean.cycles()
        );
    }
}

#[test]
fn zero_bit_flips_zero_detections_full_campaign_coverage() {
    let program = Kernel::Compiler.build(1);
    let report = Campaign::new(ReeseConfig::starting(), FaultMix::result_errors_only())
        .trials(30)
        .seed(99)
        .run(&program)
        .expect("campaign");
    assert_eq!(report.detected, 30, "result errors are always caught");
    assert!(report.all_states_clean());
    assert!(report.mean_detection_latency() > 0.0);
}

#[test]
fn uncovered_classes_stay_uncovered() {
    let program = Kernel::Imaging.build(1);
    let report = Campaign::new(ReeseConfig::starting(), FaultMix::broad())
        .trials(50)
        .seed(7)
        .run(&program)
        .expect("campaign");
    for class in [
        FaultClass::PostCompare,
        FaultClass::CacheCell,
        FaultClass::PipelineControl,
    ] {
        let (detected, total) = report.by_class(class);
        assert_eq!(detected, 0, "{class} is outside REESE's observation window");
        assert!(total > 0, "the broad mix must exercise {class}");
    }
    for class in [FaultClass::PrimaryResult, FaultClass::RedundantResult] {
        let (detected, total) = report.by_class(class);
        assert_eq!(detected, total, "{class} must be fully covered");
    }
}

#[test]
fn sticky_faults_are_reported_as_permanent() {
    let program = Kernel::Database.build(1);
    let sim = ReeseSim::new(ReeseConfig::starting());
    let err = sim
        .run_with_faults(&program, &[InjectedFault::permanent(50, 3)], u64::MAX)
        .expect_err("a sticky fault cannot be recovered from");
    match err {
        ReeseError::PermanentFault { seq, .. } => assert_eq!(seq, 50),
        other => panic!("expected PermanentFault, got {other}"),
    }
}

#[test]
fn multiple_transients_each_detected_once() {
    let program = Kernel::Gameplay.build(1);
    let faults = [
        InjectedFault::primary(10, 0),
        InjectedFault::redundant(500, 31),
        InjectedFault::primary(2_000, 63),
    ];
    let run = ReeseSim::new(ReeseConfig::starting())
        .run_with_faults(&program, &faults, u64::MAX)
        .expect("runs");
    assert_eq!(run.stats.detections, 3);
    let seqs: Vec<u64> = run.detections.iter().map(|d| d.seq).collect();
    assert_eq!(
        seqs,
        vec![10, 500, 2_000],
        "detections arrive in program order"
    );
}

#[test]
fn partial_duplication_trades_coverage_for_nothing_worse() {
    let program = Kernel::Lisp.build(1);
    let full = ReeseSim::new(ReeseConfig::starting())
        .run(&program)
        .expect("runs");
    let half = ReeseSim::new(ReeseConfig::starting().with_duplication_period(2))
        .run(&program)
        .expect("runs");
    assert!(
        half.cycles() <= full.cycles(),
        "less re-execution can't be slower"
    );
    assert!(half.stats.r_skipped > 0);
    // A fault on a skipped (odd) instruction silently escapes.
    let escaped = ReeseSim::new(ReeseConfig::starting().with_duplication_period(2))
        .run_with_faults(&program, &[InjectedFault::primary(101, 5)], u64::MAX)
        .expect("runs");
    assert_eq!(
        escaped.stats.detections, 0,
        "odd instructions are unprotected at period 2"
    );
}

#[test]
fn detection_works_in_early_removal_mode_too() {
    let program = Kernel::Strings.build(1);
    let sim = ReeseSim::new(ReeseConfig::starting().with_early_removal(true));
    let clean = sim.run(&program).expect("runs");
    let run = sim
        .run_with_faults(&program, &[InjectedFault::primary(777, 21)], u64::MAX)
        .expect("runs");
    assert_eq!(run.stats.detections, 1);
    assert_eq!(run.state_digest, clean.state_digest);
}

#[test]
fn short_duration_faults_always_detected() {
    use reese::core::DurationFault;
    use reese::isa::FuClass;
    let program = Kernel::Compiler.build(1);
    let sim = ReeseSim::new(ReeseConfig::starting());
    let clean = sim.run(&program).expect("clean");
    // Δt = 1 is far below the machine's minimum P→R separation, so any
    // corruption hits exactly one stream and must be caught.
    let mut affected_any = false;
    for start in (clean.cycles() / 4..clean.cycles() / 2).step_by(997) {
        let fault = DurationFault {
            start_cycle: start,
            duration: 1,
            class: FuClass::IntAlu,
            bit: 5,
        };
        let (run, report) = sim
            .run_with_duration_fault(&program, fault, u64::MAX)
            .expect("runs");
        assert_eq!(
            report.silent_both, 0,
            "Δt=1 cannot straddle both executions"
        );
        if report.affected() {
            affected_any = true;
            assert!(
                run.stats.detections > 0,
                "a one-stream corruption must be detected"
            );
            assert_eq!(
                run.state_digest, clean.state_digest,
                "recovery restores state"
            );
        }
    }
    assert!(affected_any, "at least one window must hit an instruction");
}

#[test]
fn long_duration_faults_escape_silently() {
    use reese::core::DurationFault;
    use reese::isa::FuClass;
    let program = Kernel::Compiler.build(1);
    let sim = ReeseSim::new(ReeseConfig::starting());
    let clean = sim.run(&program).expect("clean");
    let sep_max = clean.stats.pr_separation.max();
    // A disturbance much longer than the maximum separation corrupts
    // both executions of many instructions identically.
    let fault = DurationFault {
        start_cycle: clean.cycles() / 3,
        duration: sep_max * 4,
        class: FuClass::IntAlu,
        bit: 3,
    };
    match sim.run_with_duration_fault(&program, fault, u64::MAX) {
        Ok((_, report)) => {
            assert!(
                report.silent_both > 0,
                "long faults must produce silent escapes: {report:?}"
            );
        }
        Err(ReeseError::PermanentFault { .. }) => {
            // Also acceptable: the disturbance outlasted the retry and
            // the machine stopped — the paper's notify-the-user case.
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn separation_statistics_are_recorded() {
    let program = Kernel::Strings.build(1);
    let run = ReeseSim::new(ReeseConfig::starting())
        .run(&program)
        .expect("runs");
    let sep = &run.stats.pr_separation;
    assert_eq!(sep.samples(), run.stats.comparisons);
    assert!(sep.mean() > 1.0, "R completion must trail P completion");
}

/// The ISSUE-mandated large parallel campaign: ≥200 trials per kernel
/// on two kernels, fanned over 4 workers, with the §4.2 coverage
/// boundary holding exactly — every result-class fault detected, every
/// post-compare-class fault (by design) missed.
#[test]
fn large_parallel_campaign_respects_coverage_boundary() {
    for (kernel, seed) in [(Kernel::Compiler, 1001), (Kernel::Lisp, 1002)] {
        let program = kernel.build(1);
        let report = Campaign::new(ReeseConfig::starting(), FaultMix::broad())
            .trials(200)
            .seed(seed)
            .jobs(4)
            .run(&program)
            .expect("campaign");
        assert_eq!(report.trials(), 200);
        for class in [FaultClass::PrimaryResult, FaultClass::RedundantResult] {
            let (det, total) = report.by_class(class);
            assert!(
                total > 0,
                "{kernel}: the broad mix must draw {class} trials"
            );
            assert_eq!(det, total, "{kernel}: every {class} fault must be detected");
        }
        for class in [
            FaultClass::PostCompare,
            FaultClass::CacheCell,
            FaultClass::PipelineControl,
        ] {
            let (det, total) = report.by_class(class);
            assert!(
                total > 0,
                "{kernel}: the broad mix must draw {class} trials"
            );
            assert_eq!(
                det, 0,
                "{kernel}: {class} faults are outside REESE's window"
            );
        }
        assert!(
            report.all_states_clean(),
            "{kernel}: recovery restores state"
        );
        let t = report.throughput.as_ref().expect("throughput recorded");
        assert_eq!(t.items(), 200);
        assert_eq!(t.jobs, 4);
    }
}
