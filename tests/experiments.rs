//! Reduced-scale versions of the paper's experiments, asserting the
//! *shape* of every figure: who wins, in which direction the knobs
//! move, and where the paper's qualitative claims appear.

use reese::core::{ReeseConfig, ReeseSim};
use reese::pipeline::{FuCounts, PipelineConfig, PipelineSim};
use reese::stats::mean;
use reese::workloads::Suite;

fn suite() -> Suite {
    Suite::smoke()
}

fn avg_ipc_baseline(suite: &Suite, cfg: &PipelineConfig) -> f64 {
    mean(
        &suite
            .iter()
            .map(|w| {
                PipelineSim::new(cfg.clone())
                    .run(&w.program)
                    .expect("runs")
                    .ipc()
            })
            .collect::<Vec<_>>(),
    )
}

fn avg_ipc_reese(suite: &Suite, cfg: &ReeseConfig) -> f64 {
    mean(
        &suite
            .iter()
            .map(|w| {
                ReeseSim::new(cfg.clone())
                    .run(&w.program)
                    .expect("runs")
                    .ipc()
            })
            .collect::<Vec<_>>(),
    )
}

/// Figure 2's shape: on the starting configuration REESE trails the
/// baseline, and spare ALUs narrow the gap.
#[test]
fn fig2_shape_reese_trails_and_spares_help() {
    let s = suite();
    let base = avg_ipc_baseline(&s, &PipelineConfig::starting());
    let plain = avg_ipc_reese(&s, &ReeseConfig::starting());
    let spared = avg_ipc_reese(&s, &ReeseConfig::starting().with_spare_int_alus(2));
    assert!(
        plain < base,
        "REESE {plain:.3} must trail baseline {base:.3}"
    );
    assert!(
        spared >= plain,
        "+2 ALUs must not hurt ({spared:.3} vs {plain:.3})"
    );
    let gap = (base - plain) / base;
    assert!(
        (0.02..0.40).contains(&gap),
        "overhead {:.1}% outside any plausible band",
        gap * 100.0
    );
}

/// Figure 3's shape: doubling RUU/LSQ raises baseline IPC.
#[test]
fn fig3_shape_bigger_window_helps_baseline() {
    let s = suite();
    let small = avg_ipc_baseline(&s, &PipelineConfig::starting());
    let big = avg_ipc_baseline(&s, &PipelineConfig::starting().with_ruu(32).with_lsq(16));
    assert!(
        big > small,
        "RUU 32 ({big:.3}) must beat RUU 16 ({small:.3})"
    );
}

/// Figure 4's shape: a 16-wide datapath does not slow anything down.
#[test]
fn fig4_shape_wider_datapath_not_worse() {
    let s = suite();
    let narrow = avg_ipc_baseline(&s, &PipelineConfig::starting().with_ruu(32).with_lsq(16));
    let wide = avg_ipc_baseline(
        &s,
        &PipelineConfig::starting()
            .with_ruu(32)
            .with_lsq(16)
            .with_width(16),
    );
    assert!(
        wide >= narrow * 0.98,
        "wide {wide:.3} vs narrow {narrow:.3}"
    );
}

/// Figure 5's shape: extra memory ports lift REESE's absolute IPC.
#[test]
fn fig5_shape_ports_help_reese() {
    let s = suite();
    let base16 = PipelineConfig::starting()
        .with_ruu(32)
        .with_lsq(16)
        .with_width(16);
    let two_ports = avg_ipc_reese(&s, &ReeseConfig::over(base16.clone()));
    let four_ports = avg_ipc_reese(&s, &ReeseConfig::over(base16.with_mem_ports(4)));
    assert!(
        four_ports > two_ports,
        "4 ports ({four_ports:.3}) must beat 2 ports ({two_ports:.3}) for REESE"
    );
}

/// Figure 7's shape: growing only the RUU leaves a substantial REESE
/// gap, while adding functional units collapses it.
#[test]
fn fig7_shape_fus_collapse_the_gap() {
    let s = suite();
    let more_fus = FuCounts {
        int_alu: 8,
        int_muldiv: 4,
        fp_alu: 8,
        fp_muldiv: 4,
        mem_ports: 2,
    };
    let ruu_only = PipelineConfig::starting().with_ruu(64).with_lsq(32);
    let with_fus = ruu_only.clone().with_fu(more_fus);

    let gap = |cfg: &PipelineConfig| {
        let b = avg_ipc_baseline(&s, cfg);
        let r = avg_ipc_reese(&s, &ReeseConfig::over(cfg.clone()));
        (b - r) / b
    };
    let gap_ruu_only = gap(&ruu_only);
    let gap_with_fus = gap(&with_fus);
    assert!(
        gap_with_fus < gap_ruu_only,
        "extra FUs must shrink the gap ({:.1}% -> {:.1}%)",
        gap_ruu_only * 100.0,
        gap_with_fus * 100.0
    );
}

/// §4.3's early-removal optimisation: never worse than holding RUU
/// entries, and strictly better on the small starting window.
#[test]
fn early_removal_pays_on_the_small_window() {
    let s = suite();
    let held = avg_ipc_reese(&s, &ReeseConfig::starting());
    let early = avg_ipc_reese(&s, &ReeseConfig::starting().with_early_removal(true));
    assert!(
        early > held,
        "early removal ({early:.3}) must beat held-RUU ({held:.3}) at RUU=16"
    );
}

/// §7's partial duplication: time improves monotonically as coverage is
/// given up.
#[test]
fn partial_duplication_monotone() {
    let s = suite();
    let mut last = 0.0;
    for period in [1u64, 2, 4] {
        let ipc = avg_ipc_reese(&s, &ReeseConfig::starting().with_duplication_period(period));
        assert!(
            ipc >= last,
            "period {period}: IPC {ipc:.3} regressed below {last:.3}"
        );
        last = ipc;
    }
}

/// The idle-capacity premise (§4.1): the baseline leaves a meaningful
/// fraction of issue slots unused — that's what REESE harvests.
#[test]
fn baseline_has_idle_capacity() {
    let s = suite();
    for w in s.iter() {
        let r = PipelineSim::new(PipelineConfig::starting())
            .run(&w.program)
            .expect("runs");
        let idle = r.stats.idle_issue_fraction(8);
        assert!(
            idle > 0.3,
            "{}: idle fraction {idle:.2} — the premise needs idle slots",
            w.kernel
        );
    }
}
