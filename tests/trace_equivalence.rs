//! Tracing must be invisible to the simulation.
//!
//! The `reese-trace` observer hooks are statically dispatched and
//! guarded by `Observer::ENABLED`; attaching a collecting [`Tracer`]
//! must change *nothing* about the simulated machine. Every result —
//! cycles, stats, output, state digest — has to be bit-identical with
//! tracing on and off, across every kernel, every scheme, and both
//! scheduler modes.

use reese::core::{DuplexSim, ReeseConfig, ReeseSim, SchedulerMode};
use reese::pipeline::{PipelineConfig, PipelineSim};
use reese::trace::Tracer;
use reese::workloads::Kernel;

/// Per-kernel instruction cap: long enough to exercise stalls, idle
/// skips, and several metrics intervals, short enough for debug builds.
const CAP: u64 = 15_000;

const MODES: [SchedulerMode; 2] = [SchedulerMode::Scan, SchedulerMode::EventDriven];

fn tracer() -> Tracer {
    Tracer::new().with_interval(1_000)
}

#[test]
fn baseline_results_identical_with_tracing_on() {
    for kernel in Kernel::ALL {
        let program = kernel.build(1);
        for mode in MODES {
            let cfg = PipelineConfig::starting().with_scheduler(mode);
            let plain = PipelineSim::new(cfg.clone())
                .run_region(&program, 0, CAP)
                .unwrap();
            let mut t = tracer();
            let traced = PipelineSim::new(cfg)
                .run_observed(&program, 0, CAP, &mut t)
                .unwrap();
            assert_eq!(plain, traced, "{kernel}/{mode:?}: tracing changed baseline");
            t.finish();
            let (ring, metrics) = t.into_parts();
            assert!(!ring.is_empty(), "{kernel}/{mode:?}: empty trace ring");
            assert!(!metrics.rows.is_empty(), "{kernel}/{mode:?}: no metrics");
        }
    }
}

#[test]
fn reese_results_identical_with_tracing_on() {
    for kernel in Kernel::ALL {
        let program = kernel.build(1);
        for mode in MODES {
            let cfg = ReeseConfig::starting().with_scheduler(mode);
            let plain = ReeseSim::new(cfg.clone())
                .run_with_faults(&program, &[], CAP)
                .unwrap();
            let mut t = tracer();
            let traced = ReeseSim::new(cfg)
                .run_with_faults_observed(&program, &[], 0, CAP, &mut t)
                .unwrap();
            assert_eq!(plain, traced, "{kernel}/{mode:?}: tracing changed REESE");
            t.finish();
            let (ring, metrics) = t.into_parts();
            assert!(!ring.is_empty(), "{kernel}/{mode:?}: empty trace ring");
            assert!(!metrics.rows.is_empty(), "{kernel}/{mode:?}: no metrics");
        }
    }
}

#[test]
fn duplex_results_identical_with_tracing_on() {
    for kernel in Kernel::ALL {
        let program = kernel.build(1);
        for mode in MODES {
            let cfg = PipelineConfig::starting().with_scheduler(mode);
            let plain = DuplexSim::new(cfg.clone())
                .run_limit(&program, CAP)
                .unwrap();
            let mut t = tracer();
            let traced = DuplexSim::new(cfg)
                .run_limit_observed(&program, CAP, &mut t)
                .unwrap();
            assert_eq!(plain, traced, "{kernel}/{mode:?}: tracing changed duplex");
            t.finish();
            let (ring, metrics) = t.into_parts();
            assert!(!ring.is_empty(), "{kernel}/{mode:?}: empty trace ring");
            assert!(!metrics.rows.is_empty(), "{kernel}/{mode:?}: no metrics");
        }
    }
}

#[test]
fn reese_traced_run_matches_under_spares_and_partial_duplication() {
    // The R-stream issue hooks live on both the scan and the
    // budget-capped event-driven paths; cover the configurations that
    // steer instructions through them differently.
    let program = Kernel::Lisp.build(1);
    for cfg in [
        ReeseConfig::starting().with_spare_int_alus(2),
        ReeseConfig::starting().with_rqueue_size(8),
        ReeseConfig::starting().with_duplication_period(3),
        ReeseConfig::starting().with_early_removal(true),
    ] {
        let plain = ReeseSim::new(cfg.clone())
            .run_with_faults(&program, &[], CAP)
            .unwrap();
        let mut t = tracer();
        let traced = ReeseSim::new(cfg)
            .run_with_faults_observed(&program, &[], 0, CAP, &mut t)
            .unwrap();
        assert_eq!(plain, traced, "tracing changed a tuned REESE run");
    }
}

/// The sampled `sched_ops` counter prices the event-driven machinery:
/// ReadyRing/EventWheel traffic plus R-stream front-window maintenance.
/// Scan mode maintains none of it and must report zero; event mode pays
/// a bounded, amortised-per-instruction cost — not the per-cycle
/// window-rescan cost (`cycles x lookahead`) the incremental front
/// window replaced.
#[test]
fn sched_ops_counter_proves_per_cycle_op_reduction() {
    let program = Kernel::Lisp.build(1);
    let mut totals = [0u64; 2];
    for (slot, mode) in MODES.into_iter().enumerate() {
        let cfg = ReeseConfig::starting().with_scheduler(mode);
        let mut t = tracer();
        let result = ReeseSim::new(cfg)
            .run_with_faults_observed(&program, &[], 0, CAP, &mut t)
            .unwrap();
        t.finish();
        let (_, metrics) = t.into_parts();
        totals[slot] = metrics.rows.iter().map(|r| r.sched_ops).sum();
        if mode == SchedulerMode::Scan {
            assert_eq!(
                totals[slot], 0,
                "scan mode maintains no event structures, so it bills no sched-ops"
            );
        } else {
            let insns = result.committed_instructions();
            let cycles = result.stats.pipeline.cycles;
            assert!(totals[slot] > 0, "event mode must bill its bookkeeping");
            // Amortised constant per instruction: push + issue + complete
            // plus ReadyRing traffic and the rare window rebuilds.
            assert!(
                totals[slot] <= 12 * insns,
                "sched-ops {} exceed 12 per committed instruction ({insns})",
                totals[slot]
            );
            // Strictly cheaper than rescanning the lookahead window every
            // cycle, which is what the maintained front window replaced.
            let lookahead = 8;
            assert!(
                totals[slot] < cycles * lookahead,
                "sched-ops {} not below the per-cycle rescan cost {}",
                totals[slot],
                cycles * lookahead
            );
        }
    }
}

/// The schemes that have no sim of their own — MEEK's checker farm and
/// SWIFT's duplicated software stream — reach the observer hooks
/// through the campaign path. Sampling per-interval metrics there must
/// leave every scheme's outcomes bit-identical, or the memoized
/// unobserved fast path and the observed path would disagree.
#[test]
fn campaign_outcomes_identical_with_metrics_sampling_for_every_scheme() {
    use reese::ckpt::Scheme;
    use reese::faults::{Campaign, FaultMix};
    let program = Kernel::Lisp.build(1);
    let cfg = ReeseConfig::starting();
    for scheme in Scheme::ALL {
        let base = Campaign::new(cfg.clone(), FaultMix::broad())
            .scheme(scheme)
            .trials(8)
            .seed(11)
            .max_instructions(CAP);
        let plain = base.clone().run(&program).unwrap();
        let sampled = base.metrics_interval(500).run(&program).unwrap();
        assert_eq!(
            plain, sampled,
            "{scheme:?}: metrics sampling changed outcomes"
        );
        if plain
            .outcomes
            .iter()
            .any(|o| o.class.detectable_by_design())
        {
            assert!(
                sampled.metrics.is_some(),
                "{scheme:?}: simulated trials produced no pooled metrics"
            );
        }
    }
}

#[test]
fn chrome_trace_export_is_wellformed_json() {
    let mut t = tracer();
    ReeseSim::new(ReeseConfig::starting())
        .run_with_faults_observed(&Kernel::Strings.build(1), &[], 0, CAP, &mut t)
        .unwrap();
    t.finish();
    let (ring, metrics) = t.into_parts();
    let json = ring.to_chrome_json();
    assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"ph\""));
    let mjson = metrics.to_json();
    assert!(mjson.trim_start().starts_with('{') && mjson.trim_end().ends_with('}'));
    assert!(
        metrics.to_csv().lines().count() > 1,
        "CSV has header + rows"
    );
}
