//! Toolchain round trips on real workload code: every kernel's text
//! must survive disassemble → reassemble and encode → decode unchanged.

use reese::cpu::Emulator;
use reese::isa::{assemble, decode_text, disassemble_text, encode_text};
use reese::workloads::Kernel;

#[test]
fn kernel_binaries_round_trip_through_the_encoder() {
    for kernel in Kernel::ALL {
        let program = kernel.build(1);
        let image = encode_text(program.text()).expect("kernel immediates fit");
        let decoded = decode_text(&image).expect("encoder output decodes");
        let canonical: Vec<_> = program.text().iter().map(|i| i.canonical()).collect();
        assert_eq!(decoded, canonical, "{kernel}: binary round trip");
    }
}

#[test]
fn kernel_listings_reassemble_identically() {
    for kernel in Kernel::ALL {
        let program = kernel.build(1);
        // Strip the address column the listing prints.
        let listing: String = program.text().iter().map(|i| format!("  {i}\n")).collect();
        let reassembled =
            assemble(&listing).unwrap_or_else(|e| panic!("{kernel}: listing must reassemble: {e}"));
        let canonical: Vec<_> = program.text().iter().map(|i| i.canonical()).collect();
        assert_eq!(
            reassembled.text(),
            &canonical[..],
            "{kernel}: assembly round trip"
        );
    }
}

#[test]
fn listing_with_addresses_is_well_formed() {
    let program = Kernel::Compiler.build(1);
    let listing = disassemble_text(program.text(), program.text_base());
    assert_eq!(listing.lines().count(), program.len());
    assert!(listing.starts_with("0x00001000:"));
}

#[test]
fn data_segments_load_correctly() {
    // The emulator must see exactly the bytes the builder emitted.
    for kernel in Kernel::ALL {
        let program = kernel.build(1);
        let emu = Emulator::new(&program);
        for (i, &byte) in program.data().iter().enumerate().step_by(97) {
            assert_eq!(
                emu.memory().read_u8(program.data_base() + i as u64),
                byte,
                "{kernel}: data byte {i}"
            );
        }
    }
}
